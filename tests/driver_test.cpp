// Driver-level tests: the MMIO register path end-to-end, descriptor-table
// contents in host memory, immediate (descriptor-less) DMA, polled
// completion, PIO semantics, and internal-RAM diagnostics reads.
#include <gtest/gtest.h>

#include "fabric/sub_cluster.h"
#include "peach2/registers.h"

namespace tca::driver {
namespace {

using fabric::SubCluster;
using fabric::SubClusterConfig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;
namespace regs = peach2::regs;
using units::ns;
using units::us;

struct Rig {
  Rig()
      : cluster(sched, SubClusterConfig{
                           .spec = fabric::TopologySpec::ring(2),
                           .node_config = {.gpu_count = 2,
                                           .host_backing_bytes = 8 << 20,
                                           .gpu_backing_bytes = 4 << 20}}) {}
  sim::Scheduler sched;
  SubCluster cluster;
};

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 41 + i) & 0xff);
  }
  return v;
}

TEST(Driver, DescriptorTableActuallyLivesInHostMemory) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  auto data = pattern(512, 2);
  rig.cluster.chip(0).internal_ram().write(0, data);

  const DmaDescriptor desc{.src = drv.internal_global(0),
                           .dst = drv.host_buffer_global(0x100),
                           .length = 512,
                           .direction = DmaDirection::kWrite};
  auto t = drv.run_chain({desc});
  rig.sched.run();

  // The serialized table must be present at the driver's table offset.
  const auto& hl = drv.host_layout();
  DmaDescriptor fetched = DmaDescriptor::deserialize(
      rig.cluster.node(0).host_dram().view(hl.desc_table_offset,
                                           DmaDescriptor::kWireSize));
  EXPECT_EQ(fetched.src, desc.src);
  EXPECT_EQ(fetched.dst, desc.dst);
  EXPECT_EQ(fetched.length, desc.length);
  EXPECT_EQ(fetched.direction, desc.direction);
}

TEST(Driver, ImmediateDmaMovesDataWithoutTableFetch) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  auto data = pattern(2048, 3);
  rig.cluster.chip(0).internal_ram().write(0, data);

  auto t = drv.run_immediate({.src = drv.internal_global(0),
                              .dst = rig.cluster.global_host(1, 0x3000),
                              .length = 2048,
                              .direction = DmaDirection::kWrite});
  rig.sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(2048);
  rig.cluster.node(1).cpu().read_host(0x3000, out);
  EXPECT_EQ(out, data);
}

TEST(Driver, ImmediateBeatsChainOnLatency) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  rig.cluster.chip(0).internal_ram().write(0, pattern(64, 4));
  const DmaDescriptor desc{.src = drv.internal_global(0),
                           .dst = rig.cluster.global_host(1, 0),
                           .length = 64,
                           .direction = DmaDirection::kWrite};

  auto chain = drv.run_chain({desc});
  rig.sched.run();
  auto imm = drv.run_immediate(desc);
  rig.sched.run();

  // The table fetch (~0.9 us) disappears; part of the saving is eaten by
  // the three extra register writes.
  EXPECT_LT(imm.result(), chain.result() - ns(300));
}

TEST(Driver, PolledChainCompletesAndRestoresInterruptMode) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  auto data = pattern(4096, 5);
  rig.cluster.chip(0).internal_ram().write(0, data);
  const DmaDescriptor desc{.src = drv.internal_global(0),
                           .dst = rig.cluster.global_host(1, 0x1000),
                           .length = 4096,
                           .direction = DmaDirection::kWrite};

  auto polled = drv.run_chain_polled({desc});
  rig.sched.run();
  ASSERT_TRUE(polled.done());
  std::vector<std::byte> out(4096);
  rig.cluster.node(1).cpu().read_host(0x1000, out);
  EXPECT_EQ(out, data);

  // Interrupt mode restored: a plain chain still completes.
  auto normal = drv.run_chain({desc});
  rig.sched.run();
  ASSERT_TRUE(normal.done());
  EXPECT_LT(polled.result(), normal.result());  // no interrupt latency
}

TEST(Driver, PioStoreSplitsLargeSpansIntoMaxPayloadTlps) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  auto data = pattern(1000, 6);  // not a multiple of 256

  auto t = drv.pio_store(rig.cluster.global_host(1, 0x2000), data);
  rig.sched.run();

  std::vector<std::byte> out(1000);
  rig.cluster.node(1).cpu().read_host(0x2000, out);
  EXPECT_EQ(out, data);
}

TEST(Driver, InternalRamReadableOverMmio) {
  Rig rig;
  auto data = pattern(256, 7);
  rig.cluster.chip(0).internal_ram().write(0x500, data);

  // The driver reads the chip's internal RAM through the window (local
  // MRd is allowed from Port N).
  auto t = rig.cluster.node(0).cpu().mmio_load(
      rig.cluster.driver(0).internal_global(0x500), 256);
  rig.sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), data);
}

TEST(Driver, RegisterRoundTripThroughWindow) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  // Named closures: a temporary lambda dies at the semicolon while the
  // eager coroutine is still suspended on MMIO, dangling its captures.
  auto prog_fn = [&]() -> sim::Task<> {
    co_await drv.write_register(regs::kDmaTableAddr, 0xABCD'0000ull);
  };
  auto prog = prog_fn();
  rig.sched.run();
  // Readback through the same MMIO path (write_register went to the DMAC;
  // the register file reflects it via kDmaWritebackAddr read slot; the
  // table address itself is write-only in hardware, so verify behaviorally:
  // the DMAC sees it on doorbell with count 0 -> error, not a crash).
  auto err_fn = [&]() -> sim::Task<> {
    co_await drv.write_register(regs::kDmaDoorbell, 1);
  };
  auto err = err_fn();
  rig.sched.run();
  EXPECT_NE(rig.cluster.chip(0).dmac().status() & 4ull, 0u);
}

TEST(Driver, GpuPinningRejectsBadIndexAndRange) {
  Rig rig;
  auto& p2p = rig.cluster.driver(0).p2p();
  EXPECT_FALSE(p2p.pin(5, 0, 4096).is_ok());
  EXPECT_FALSE(p2p.pin(-1, 0, 4096).is_ok());
  EXPECT_FALSE(p2p.pin(0, 1ull << 40, 4096).is_ok());
  EXPECT_FALSE(p2p.unpin(9, 0, 4096).is_ok());
}

TEST(Driver, HelperAddressesDecodeCorrectly) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(1);
  const auto& layout = rig.cluster.layout();

  auto host = layout.decode(drv.host_buffer_global(0x1234));
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->node, 1u);
  EXPECT_EQ(host->target, peach2::TcaTarget::kHost);

  auto gpu = layout.decode(drv.gpu_global(1, 0x42));
  ASSERT_TRUE(gpu.has_value());
  EXPECT_EQ(gpu->target, peach2::TcaTarget::kGpu1);
  EXPECT_EQ(gpu->offset, 0x42u);

  auto internal = layout.decode(drv.internal_global(0));
  ASSERT_TRUE(internal.has_value());
  EXPECT_EQ(internal->target, peach2::TcaTarget::kInternal);
}

}  // namespace
}  // namespace tca::driver
