// Self-tests for tools/tca_lint: every seeded fixture must flag its rule,
// every clean twin must pass, and the repository itself must lint clean
// (the check.sh gate depends on it). Fixture sources live in
// tests/lint/fixtures/ and are excluded from the repo-wide scan.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tca_lint/lint.h"

namespace {

using tca::lint::Finding;
using tca::lint::Options;
using tca::lint::run_lint;

std::string fixture(const std::string& name) {
  return std::string(TCA_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> lint_file(const std::string& name) {
  Options o;
  o.files.push_back(fixture(name));
  return run_lint(o);
}

std::vector<Finding> lint_registers(const std::string& name) {
  Options o;
  o.registers_path = fixture(name);
  return run_lint(o);
}

std::size_t count_rule(const std::vector<Finding>& fs,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

testing::AssertionResult only_rules(const std::vector<Finding>& fs,
                                    const std::set<std::string>& expected) {
  for (const Finding& f : fs) {
    if (expected.find(f.rule) == expected.end()) {
      return testing::AssertionFailure()
             << "unexpected finding " << f.file << ":" << f.line << " ["
             << f.rule << "] " << f.message;
    }
  }
  return testing::AssertionSuccess();
}

TEST(LintCoroutine, TemporaryClosureFlagged) {
  const auto fs = lint_file("coro_temporary_closure_bad.cpp");
  EXPECT_EQ(count_rule(fs, "coro-temporary-closure"), 1u);
  EXPECT_TRUE(only_rules(fs, {"coro-temporary-closure"}));
}

TEST(LintCoroutine, SafeIdiomsPass) {
  EXPECT_TRUE(lint_file("coro_temporary_closure_good.cpp").empty());
}

TEST(LintCoroutine, RefParamsFlagged) {
  const auto fs = lint_file("coro_ref_param_bad.cpp");
  EXPECT_EQ(count_rule(fs, "coro-ref-param"), 2u);  // const T& and T&&
  EXPECT_TRUE(only_rules(fs, {"coro-ref-param"}));
}

TEST(LintCoroutine, ByValueParamsPass) {
  EXPECT_TRUE(lint_file("coro_ref_param_good.cpp").empty());
}

TEST(LintDeterminism, WallClockFlagged) {
  const auto fs = lint_file("det_wall_clock_bad.cpp");
  EXPECT_EQ(count_rule(fs, "det-wall-clock"), 1u);
  EXPECT_TRUE(only_rules(fs, {"det-wall-clock"}));
}

TEST(LintDeterminism, SimulatedTimePasses) {
  EXPECT_TRUE(lint_file("det_wall_clock_good.cpp").empty());
}

TEST(LintDeterminism, RawRandFlagged) {
  const auto fs = lint_file("det_raw_rand_bad.cpp");
  EXPECT_EQ(count_rule(fs, "det-raw-rand"), 2u);  // mt19937 and rand
  EXPECT_TRUE(only_rules(fs, {"det-raw-rand"}));
}

TEST(LintDeterminism, SeededRngPasses) {
  EXPECT_TRUE(lint_file("det_raw_rand_good.cpp").empty());
}

TEST(LintDeterminism, UnorderedIterationFlagged) {
  const auto fs = lint_file("det_unordered_iter_bad.cpp");
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 1u);
  EXPECT_TRUE(only_rules(fs, {"det-unordered-iter"}));
}

TEST(LintDeterminism, KeyedLookupAndOrderedIterationPass) {
  EXPECT_TRUE(lint_file("det_unordered_iter_good.cpp").empty());
}

TEST(LintDeterminism, ShardSharedStateFlagged) {
  const auto fs = lint_file("det_shard_shared_state_bad.cpp");
  // namespace-scope static and function-local static
  EXPECT_EQ(count_rule(fs, "det-shard-shared-state"), 2u);
  EXPECT_TRUE(only_rules(fs, {"det-shard-shared-state"}));
}

TEST(LintDeterminism, SynchronizedOrPerThreadStatePasses) {
  EXPECT_TRUE(lint_file("det_shard_shared_state_good.cpp").empty());
}

TEST(LintRegisters, MagicMmioFlagged) {
  const auto fs = lint_file("reg_magic_mmio_bad.cpp");
  EXPECT_EQ(count_rule(fs, "reg-magic-mmio"), 3u);
  EXPECT_TRUE(only_rules(fs, {"reg-magic-mmio"}));
}

TEST(LintRegisters, NamedOffsetsPass) {
  EXPECT_TRUE(lint_file("reg_magic_mmio_good.cpp").empty());
}

TEST(LintRegisters, BadMapFlagsEveryRule) {
  const auto fs = lint_registers("registers_bad.h");
  EXPECT_EQ(count_rule(fs, "reg-misaligned"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-dup-offset"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-out-of-window"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-bank-overlap"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-field-overflow"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-bad-alias"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-table-mismatch"), 2u);  // both directions
  EXPECT_TRUE(only_rules(
      fs, {"reg-misaligned", "reg-dup-offset", "reg-out-of-window",
           "reg-bank-overlap", "reg-field-overflow", "reg-bad-alias",
           "reg-table-mismatch"}));
}

TEST(LintRegisters, GoodMapPasses) {
  EXPECT_TRUE(lint_registers("registers_good.h").empty());
}

TEST(LintSuppression, JustifiedAllowSuppresses) {
  EXPECT_TRUE(lint_file("suppression_good.cpp").empty());
}

TEST(LintSuppression, BareAllowIsAFindingAndDoesNotSuppress) {
  const auto fs = lint_file("suppression_bad.cpp");
  EXPECT_EQ(count_rule(fs, "lint-bad-suppression"), 1u);
  EXPECT_EQ(count_rule(fs, "det-wall-clock"), 1u);
  EXPECT_TRUE(only_rules(fs, {"lint-bad-suppression", "det-wall-clock"}));
}

TEST(LintCatalogue, RuleIdsAreUnique) {
  const auto ids = tca::lint::rule_ids();
  const std::set<std::string> unique(ids.begin(), ids.end());
  EXPECT_EQ(ids.size(), unique.size());
  EXPECT_EQ(ids.size(), 16u);
}

// The actual gate: the repository (src/, tests/, tools/, examples/, bench/
// plus the real registers.h) must lint clean. Reintroducing the PR 3
// temporary-closure bug anywhere fails this test.
TEST(LintRepo, RepositoryLintsClean) {
  Options o;
  o.root = TCA_LINT_REPO_ROOT;
  const auto fs = run_lint(o);
  for (const Finding& f : fs) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_TRUE(fs.empty());
}

}  // namespace
