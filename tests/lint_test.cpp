// Self-tests for tools/tca_lint: every seeded fixture must flag its rule,
// every clean twin must pass, and the repository itself must lint clean
// (the check.sh gate depends on it). Fixture sources live in
// tests/lint/fixtures/ and are excluded from the repo-wide scan.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tca_lint/cfg.h"
#include "tca_lint/lexer.h"
#include "tca_lint/lint.h"

namespace {

using tca::lint::Finding;
using tca::lint::Options;
using tca::lint::run_lint;

std::string fixture(const std::string& name) {
  return std::string(TCA_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> lint_file(const std::string& name) {
  Options o;
  o.files.push_back(fixture(name));
  return run_lint(o);
}

std::vector<Finding> lint_registers(const std::string& name) {
  Options o;
  o.registers_path = fixture(name);
  return run_lint(o);
}

std::size_t count_rule(const std::vector<Finding>& fs,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

testing::AssertionResult only_rules(const std::vector<Finding>& fs,
                                    const std::set<std::string>& expected) {
  for (const Finding& f : fs) {
    if (expected.find(f.rule) == expected.end()) {
      return testing::AssertionFailure()
             << "unexpected finding " << f.file << ":" << f.line << " ["
             << f.rule << "] " << f.message;
    }
  }
  return testing::AssertionSuccess();
}

TEST(LintCoroutine, TemporaryClosureFlagged) {
  const auto fs = lint_file("coro_temporary_closure_bad.cpp");
  EXPECT_EQ(count_rule(fs, "coro-temporary-closure"), 1u);
  EXPECT_TRUE(only_rules(fs, {"coro-temporary-closure"}));
}

TEST(LintCoroutine, SafeIdiomsPass) {
  EXPECT_TRUE(lint_file("coro_temporary_closure_good.cpp").empty());
}

TEST(LintCoroutine, RefParamsFlagged) {
  const auto fs = lint_file("coro_ref_param_bad.cpp");
  EXPECT_EQ(count_rule(fs, "coro-ref-param"), 2u);  // const T& and T&&
  EXPECT_TRUE(only_rules(fs, {"coro-ref-param"}));
}

TEST(LintCoroutine, ByValueParamsPass) {
  EXPECT_TRUE(lint_file("coro_ref_param_good.cpp").empty());
}

TEST(LintDeterminism, WallClockFlagged) {
  const auto fs = lint_file("det_wall_clock_bad.cpp");
  EXPECT_EQ(count_rule(fs, "det-wall-clock"), 1u);
  EXPECT_TRUE(only_rules(fs, {"det-wall-clock"}));
}

TEST(LintDeterminism, SimulatedTimePasses) {
  EXPECT_TRUE(lint_file("det_wall_clock_good.cpp").empty());
}

TEST(LintDeterminism, RawRandFlagged) {
  const auto fs = lint_file("det_raw_rand_bad.cpp");
  EXPECT_EQ(count_rule(fs, "det-raw-rand"), 2u);  // mt19937 and rand
  EXPECT_TRUE(only_rules(fs, {"det-raw-rand"}));
}

TEST(LintDeterminism, SeededRngPasses) {
  EXPECT_TRUE(lint_file("det_raw_rand_good.cpp").empty());
}

TEST(LintDeterminism, UnorderedIterationFlagged) {
  const auto fs = lint_file("det_unordered_iter_bad.cpp");
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 1u);
  EXPECT_TRUE(only_rules(fs, {"det-unordered-iter"}));
}

TEST(LintDeterminism, KeyedLookupAndOrderedIterationPass) {
  EXPECT_TRUE(lint_file("det_unordered_iter_good.cpp").empty());
}

TEST(LintDeterminism, ShardSharedStateFlagged) {
  const auto fs = lint_file("det_shard_shared_state_bad.cpp");
  // namespace-scope static and function-local static
  EXPECT_EQ(count_rule(fs, "det-shard-shared-state"), 2u);
  EXPECT_TRUE(only_rules(fs, {"det-shard-shared-state"}));
}

TEST(LintDeterminism, SynchronizedOrPerThreadStatePasses) {
  EXPECT_TRUE(lint_file("det_shard_shared_state_good.cpp").empty());
}

TEST(LintRegisters, MagicMmioFlagged) {
  const auto fs = lint_file("reg_magic_mmio_bad.cpp");
  EXPECT_EQ(count_rule(fs, "reg-magic-mmio"), 3u);
  EXPECT_TRUE(only_rules(fs, {"reg-magic-mmio"}));
}

TEST(LintRegisters, NamedOffsetsPass) {
  EXPECT_TRUE(lint_file("reg_magic_mmio_good.cpp").empty());
}

TEST(LintRegisters, BadMapFlagsEveryRule) {
  const auto fs = lint_registers("registers_bad.h");
  EXPECT_EQ(count_rule(fs, "reg-misaligned"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-dup-offset"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-out-of-window"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-bank-overlap"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-field-overflow"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-bad-alias"), 1u);
  EXPECT_EQ(count_rule(fs, "reg-table-mismatch"), 2u);  // both directions
  EXPECT_TRUE(only_rules(
      fs, {"reg-misaligned", "reg-dup-offset", "reg-out-of-window",
           "reg-bank-overlap", "reg-field-overflow", "reg-bad-alias",
           "reg-table-mismatch"}));
}

TEST(LintRegisters, GoodMapPasses) {
  EXPECT_TRUE(lint_registers("registers_good.h").empty());
}

TEST(LintSuppression, JustifiedAllowSuppresses) {
  EXPECT_TRUE(lint_file("suppression_good.cpp").empty());
}

TEST(LintSuppression, BareAllowIsAFindingAndDoesNotSuppress) {
  const auto fs = lint_file("suppression_bad.cpp");
  EXPECT_EQ(count_rule(fs, "lint-bad-suppression"), 1u);
  EXPECT_EQ(count_rule(fs, "det-wall-clock"), 1u);
  EXPECT_TRUE(only_rules(fs, {"lint-bad-suppression", "det-wall-clock"}));
}

TEST(LintProtocol, LeakOnAbortPathFlagged) {
  const auto fs = lint_file("proto_leak_bad.cpp");
  EXPECT_EQ(count_rule(fs, "proto-leak"), 1u);
  EXPECT_TRUE(only_rules(fs, {"proto-leak"}));
}

TEST(LintProtocol, BalancedAndTransferredLifecyclesPass) {
  EXPECT_TRUE(lint_file("proto_leak_good.cpp").empty());
}

TEST(LintProtocol, DoubleReleaseFlagged) {
  const auto fs = lint_file("proto_double_release_bad.cpp");
  EXPECT_EQ(count_rule(fs, "proto-double-release"), 1u);
  EXPECT_TRUE(only_rules(fs, {"proto-double-release"}));
}

TEST(LintProtocol, ExactlyOnceReleasePasses) {
  EXPECT_TRUE(lint_file("proto_double_release_good.cpp").empty());
}

TEST(LintProtocol, AckBeforeCommitFlagged) {
  const auto fs = lint_file("proto_ack_before_commit_bad.cpp");
  EXPECT_EQ(count_rule(fs, "proto-ack-before-commit"), 1u);
  EXPECT_TRUE(only_rules(fs, {"proto-ack-before-commit"}));
}

TEST(LintProtocol, AckAfterCommitPasses) {
  EXPECT_TRUE(lint_file("proto_ack_before_commit_good.cpp").empty());
}

// Reintroduction gate for the second PR 8 chaos bug: recycling the staging
// slot on only one destination path is a statically provable leak now.
TEST(LintProtocol, ZombieStagingStaleSlotReintroductionFlagged) {
  const auto fs = lint_file("zombie_staging_stale_slot_bad.cpp");
  EXPECT_EQ(count_rule(fs, "proto-leak"), 1u);
  EXPECT_TRUE(only_rules(fs, {"proto-leak"}));
}

TEST(LintProtocol, StagingSlotRecycledOnEveryPathPasses) {
  EXPECT_TRUE(lint_file("zombie_staging_stale_slot_good.cpp").empty());
}

TEST(LintProtocol, BadAnnotationsAreLoud) {
  const auto fs = lint_file("proto_bad_annotation_bad.cpp");
  // A typoed clause name and a dangling statement annotation.
  EXPECT_EQ(count_rule(fs, "proto-bad-annotation"), 2u);
  EXPECT_TRUE(only_rules(fs, {"proto-bad-annotation"}));
}

TEST(LintProtocol, BorrowAcrossSuspendFlagged) {
  const auto fs = lint_file("coro_borrow_across_suspend_bad.cpp");
  EXPECT_EQ(count_rule(fs, "coro-borrow-across-suspend"), 1u);
  EXPECT_TRUE(only_rules(fs, {"coro-borrow-across-suspend"}));
}

TEST(LintProtocol, BorrowUsedBeforeSuspendOrRefreshedPasses) {
  EXPECT_TRUE(lint_file("coro_borrow_across_suspend_good.cpp").empty());
}

TEST(LintProtocol, FlagRegionOverlapFlagged) {
  const auto fs = lint_file("coll_flag_overlap_bad.cpp");
  EXPECT_EQ(count_rule(fs, "coll-flag-overlap"), 1u);  // deduped per pair
  EXPECT_TRUE(only_rules(fs, {"coll-flag-overlap"}));
}

TEST(LintProtocol, DisjointFlagRegionsPass) {
  EXPECT_TRUE(lint_file("coll_flag_overlap_good.cpp").empty());
}

TEST(LintCatalogue, RuleIdsAreUnique) {
  const auto ids = tca::lint::rule_ids();
  const std::set<std::string> unique(ids.begin(), ids.end());
  EXPECT_EQ(ids.size(), unique.size());
  EXPECT_EQ(ids.size(), 22u);
}

// --- CFG builder unit tests -------------------------------------------------
//
// These exercise tools/tca_lint/cfg.{h,cpp} directly on small snippets: node
// and edge counts, loop back edges, early-return exit edges, and co_await
// suspension-edge placement (the edges the protocol rules treat specially).

using tca::lint::build_cfgs;
using tca::lint::FunctionCfg;
using tca::lint::kCfgExit;
using tca::lint::lex;

std::vector<FunctionCfg> cfgs_of(std::string_view src) {
  return build_cfgs(lex(src));
}

std::size_t suspension_edge_count(const FunctionCfg& cfg) {
  return static_cast<std::size_t>(
      std::count_if(cfg.edges.begin(), cfg.edges.end(),
                    [](const tca::lint::CfgEdge& e) { return e.suspension; }));
}

std::size_t edges_to_exit(const FunctionCfg& cfg) {
  return static_cast<std::size_t>(
      std::count_if(cfg.edges.begin(), cfg.edges.end(),
                    [](const tca::lint::CfgEdge& e) {
                      return e.to == kCfgExit;
                    }));
}

TEST(LintCfg, EarlyReturnProducesTwoExitEdges) {
  const auto cfgs = cfgs_of("int f(int x) {\n"
                            "  if (x > 0) {\n"
                            "    return 1;\n"
                            "  }\n"
                            "  return 2;\n"
                            "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const FunctionCfg& cfg = cfgs[0];
  EXPECT_EQ(cfg.name, "f");
  EXPECT_FALSE(cfg.is_coroutine);
  // entry, exit, cond, then-return, fallthrough-return + edges between them.
  EXPECT_EQ(cfg.nodes.size(), 6u);
  EXPECT_EQ(cfg.edges.size(), 6u);
  EXPECT_EQ(suspension_edge_count(cfg), 0u);
  EXPECT_EQ(edges_to_exit(cfg), 2u);
}

TEST(LintCfg, NestedLoopsHaveBackEdges) {
  const auto cfgs = cfgs_of("void g(int n) {\n"
                            "  for (int i = 0; i < n; ++i) {\n"
                            "    while (n > 0) {\n"
                            "      --n;\n"
                            "    }\n"
                            "  }\n"
                            "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const FunctionCfg& cfg = cfgs[0];
  EXPECT_EQ(cfg.nodes.size(), 7u);
  EXPECT_EQ(cfg.edges.size(), 8u);
  // Each loop contributes one back edge: an edge whose target precedes its
  // source in node order (entry/exit aside, nodes are created in source
  // order, so backward edges are exactly the loop latches).
  const auto back_edges = std::count_if(
      cfg.edges.begin(), cfg.edges.end(), [](const tca::lint::CfgEdge& e) {
        return e.to > kCfgExit && e.to < e.from;
      });
  EXPECT_EQ(back_edges, 2);
}

TEST(LintCfg, CoAwaitSplitsStatementsWithSuspensionEdges) {
  const auto cfgs = cfgs_of("sim::Task<int> h(Chan c) {\n"
                            "  int v = co_await c.recv();\n"
                            "  co_await c.send(v);\n"
                            "  co_return v;\n"
                            "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const FunctionCfg& cfg = cfgs[0];
  EXPECT_TRUE(cfg.is_coroutine);
  EXPECT_EQ(cfg.nodes.size(), 7u);
  EXPECT_EQ(cfg.edges.size(), 6u);
  EXPECT_EQ(suspension_edge_count(cfg), 2u);
  // A suspension edge's source node ends exactly at the co_await keyword:
  // everything after it only runs post-resume.
  const auto toks = lex("sim::Task<int> h(Chan c) {\n"
                        "  int v = co_await c.recv();\n"
                        "  co_await c.send(v);\n"
                        "  co_return v;\n"
                        "}\n").toks;
  for (const tca::lint::CfgEdge& e : cfg.edges) {
    if (!e.suspension) continue;
    const tca::lint::CfgNode& from = cfg.nodes[static_cast<std::size_t>(e.from)];
    ASSERT_GT(from.end, from.begin);
    EXPECT_EQ(toks[from.end - 1].text, "co_await");
  }
}

TEST(LintCfg, InfiniteLoopHasNoExitEdge) {
  const auto cfgs = cfgs_of("void loop() {\n"
                            "  for (;;) {\n"
                            "    step();\n"
                            "  }\n"
                            "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_EQ(edges_to_exit(cfgs[0]), 0u);
}

TEST(LintCfg, LambdaBodiesGetTheirOwnCfg) {
  const auto cfgs = cfgs_of("void outer() {\n"
                            "  auto fn = [](int x) { return x + 1; };\n"
                            "  fn(1);\n"
                            "}\n");
  ASSERT_EQ(cfgs.size(), 2u);
  const auto lambdas = std::count_if(
      cfgs.begin(), cfgs.end(),
      [](const FunctionCfg& c) { return c.is_lambda; });
  EXPECT_EQ(lambdas, 1);
  // The enclosing function's statement walk must skip the nested lambda's
  // token range rather than treating its body as its own statements.
  for (const FunctionCfg& c : cfgs) {
    if (c.is_lambda) continue;
    EXPECT_EQ(c.nested_lambdas.size(), 1u);
  }
}

// The actual gate: the repository (src/, tests/, tools/, examples/, bench/
// plus the real registers.h) must lint clean. Reintroducing the PR 3
// temporary-closure bug anywhere fails this test.
TEST(LintRepo, RepositoryLintsClean) {
  Options o;
  o.root = TCA_LINT_REPO_ROOT;
  const auto fs = run_lint(o);
  for (const Finding& f : fs) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_TRUE(fs.empty());
}

}  // namespace
