// Stress and determinism guard for the rewritten event core.
//
// Randomized schedule/cancel/reschedule interleavings (>=100k fired events)
// assert the invariants the indexed queue must preserve: FIFO stability
// among equal timestamps, cancel-after-fire returning false, run-to-run
// determinism (identical events_processed and fire-order hashes), and
// equivalence with the seed priority_queue baseline backend. Also pins the
// allocation-free guarantee of sim::EventFn for the capture shapes the
// simulator's hot paths use.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "pcie/tlp.h"
#include "sim/event_fn.h"
#include "sim/scheduler.h"

namespace tca::sim {
namespace {

using units::ns;

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

struct StressResult {
  std::uint64_t processed = 0;
  std::uint64_t fired = 0;
  TimePs final_now = 0;
  std::uint64_t fire_hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  bool fifo_ok = true;
};

/// Drives `target_fired` events through a Scheduler with a deterministic mix
/// of schedules (some from inside callbacks), cancels of live events, and
/// reschedules (cancel + schedule). Tokens increase in scheduling order, so
/// FIFO stability among equal timestamps is checkable as strictly increasing
/// tokens within each timestamp.
StressResult run_stress(Scheduler::QueueImpl impl, std::uint64_t seed,
                        std::uint64_t target_fired) {
  Scheduler sched(impl);
  Rng rng(seed);
  StressResult res;
  std::uint64_t next_token = 0;
  TimePs last_time = -1;
  std::uint64_t last_token = 0;
  // Live (cancellable) events: parallel id/token bookkeeping, swap-removed.
  // Entries for fired events are purged before use (fired_flag), so cancel()
  // is only ever invoked on genuinely pending events — where both backends
  // agree; cancel-after-fire semantics get their own dedicated test.
  std::vector<std::pair<Scheduler::EventId, std::uint64_t>> live;
  std::vector<char> fired_flag;

  auto on_fire = [&](std::uint64_t token) {
    const TimePs t = sched.now();
    if (t == last_time && token <= last_token) res.fifo_ok = false;
    last_time = t;
    last_token = token;
    fired_flag[token] = 1;
    ++res.fired;
    res.fire_hash = hash_combine(res.fire_hash, token);
    res.fire_hash = hash_combine(res.fire_hash, static_cast<std::uint64_t>(t));
  };

  auto schedule_one = [&](TimePs at) {
    const std::uint64_t token = next_token++;
    fired_flag.push_back(0);
    const auto id = sched.schedule_at(at, [&, token] { on_fire(token); });
    live.emplace_back(id, token);
  };

  // Picks a random still-pending entry and removes it from `live`, purging
  // fired entries it stumbles on. Returns kInvalidEvent when none is left.
  auto take_live = [&]() -> Scheduler::EventId {
    while (!live.empty()) {
      const std::size_t i = rng.next_below(live.size());
      const auto [id, token] = live[i];
      live[i] = live.back();
      live.pop_back();
      if (fired_flag[token] == 0) return id;
    }
    return Scheduler::kInvalidEvent;
  };

  while (res.fired < target_fired) {
    const std::uint64_t op = rng.next_below(8);
    if (op < 4 || live.empty()) {
      // Same-timestamp bursts are common (a quarter of schedules reuse the
      // current instant) so the FIFO check actually bites.
      const TimePs at = rng.next_below(4) == 0
                            ? sched.now()
                            : sched.now() + static_cast<TimePs>(
                                                rng.next_below(1000));
      schedule_one(at);
    } else if (op < 5) {
      if (const auto id = take_live(); id != Scheduler::kInvalidEvent) {
        EXPECT_TRUE(sched.cancel(id));
      }
    } else if (op < 6) {
      // Reschedule: cancel + schedule at a new time, as a timeout push-out.
      if (const auto id = take_live(); id != Scheduler::kInvalidEvent) {
        EXPECT_TRUE(sched.cancel(id));
        schedule_one(sched.now() + static_cast<TimePs>(rng.next_below(500)));
      }
    } else {
      sched.step();
    }
  }
  sched.run();
  res.processed = sched.events_processed();
  res.final_now = sched.now();
  EXPECT_TRUE(sched.empty());
  return res;
}

TEST(SchedulerStress, FifoStableAndDeterministicAcrossRuns) {
  const auto a = run_stress(Scheduler::QueueImpl::kIndexed, 0xA11CE, 120'000);
  const auto b = run_stress(Scheduler::QueueImpl::kIndexed, 0xA11CE, 120'000);
  EXPECT_TRUE(a.fifo_ok);
  EXPECT_GE(a.fired, 120'000u);
  EXPECT_EQ(a.processed, b.processed);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.fire_hash, b.fire_hash);
}

TEST(SchedulerStress, IndexedMatchesBaselineImpl) {
  // The two backends must produce identical simulated behavior: same events
  // fire, in the same order, at the same times.
  const auto idx = run_stress(Scheduler::QueueImpl::kIndexed, 0x5EED, 100'000);
  const auto base =
      run_stress(Scheduler::QueueImpl::kBaseline, 0x5EED, 100'000);
  EXPECT_TRUE(idx.fifo_ok);
  EXPECT_TRUE(base.fifo_ok);
  EXPECT_EQ(idx.processed, base.processed);
  EXPECT_EQ(idx.fired, base.fired);
  EXPECT_EQ(idx.final_now, base.final_now);
  EXPECT_EQ(idx.fire_hash, base.fire_hash);
}

TEST(SchedulerStress, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sched.schedule_at(ns(i), [] {}));
  }
  sched.run();
  for (auto id : ids) EXPECT_FALSE(sched.cancel(id));
  // Slot reuse must not resurrect old ids: new events recycle the slots the
  // fired ones used, yet the stale ids still cancel nothing.
  std::vector<Scheduler::EventId> fresh;
  for (int i = 0; i < 1000; ++i) {
    fresh.push_back(sched.schedule_after(ns(1), [] {}));
  }
  for (auto id : ids) EXPECT_FALSE(sched.cancel(id));
  for (auto id : fresh) EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerStress, CancelledStormDoesNotFire) {
  // Heavy tombstone load: 50k scheduled, all but every 16th cancelled.
  Scheduler sched;
  Rng rng(99);
  std::uint64_t fired = 0;
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 50'000; ++i) {
    ids.push_back(sched.schedule_at(
        static_cast<TimePs>(rng.next_below(1'000'000)), [&fired] { ++fired; }));
  }
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 16 == 0) {
      ++kept;
    } else {
      EXPECT_TRUE(sched.cancel(ids[i]));
    }
  }
  sched.run();
  EXPECT_EQ(fired, kept);
  EXPECT_EQ(sched.events_processed(), kept);
}

// --- EventFn ----------------------------------------------------------------

TEST(EventFn, SimCaptureShapesStayInline) {
  // The capture shapes of the simulator's hot paths: [this] retries,
  // [this, offset, vector] GPU commits, and [this, Tlp] link deliveries.
  struct Fake {
    int hits = 0;
  } fake;
  const std::uint64_t before = EventFn::heap_constructions();

  EventFn small([&fake] { ++fake.hits; });
  EXPECT_FALSE(small.heap_allocated());

  pcie::Tlp tlp;
  tlp.address = 0x1000;
  tlp.payload.resize(4096);
  EventFn delivery([p = &fake, t = std::move(tlp)] { ++p->hits; });
  static_assert(sizeof(pcie::Tlp) + sizeof(void*) <= EventFn::kInlineBytes);
  EXPECT_FALSE(delivery.heap_allocated());

  small();
  delivery();
  EXPECT_EQ(fake.hits, 2);
  EXPECT_EQ(EventFn::heap_constructions(), before);
}

TEST(EventFn, OversizedCapturesFallBackToHeap) {
  const std::uint64_t before = EventFn::heap_constructions();
  struct Big {
    std::byte bytes[256] = {};
  } big;
  int hits = 0;
  EventFn fn([big, &hits] { (void)big; ++hits; });
  EXPECT_TRUE(fn.heap_allocated());
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 1);
  // Moving never re-allocates.
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
}

TEST(EventFn, MoveTransfersStateAndDestroysOnce) {
  int destroyed = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(std::exchange(o.counter, nullptr)) {}
    Probe(const Probe&) = delete;
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
  };
  {
    EventFn a([p = Probe(&destroyed)] { (void)p; });
    EXPECT_TRUE(static_cast<bool>(a));
    EventFn b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EventFn c;
    c = std::move(b);
    EXPECT_TRUE(static_cast<bool>(c));
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(EventFn, SchedulerChurnIsAllocationFree) {
  // Steady-state schedule/cancel/fire churn with representative capture
  // sizes must not advance the EventFn heap counter — the acceptance bar of
  // the allocation-free scheduler rewrite.
  Scheduler sched;
  std::uint64_t fired = 0;
  // Warm up the slot pool and heap capacity.
  for (int i = 0; i < 1024; ++i) {
    sched.schedule_at(ns(i), [&fired, pad = std::uint64_t{0}] {
      (void)pad;
      ++fired;
    });
  }
  sched.run();
  const std::uint64_t before = EventFn::heap_constructions();
  for (int round = 0; round < 100; ++round) {
    std::vector<Scheduler::EventId> ids;
    for (int i = 0; i < 512; ++i) {
      ids.push_back(sched.schedule_after(
          ns(i % 64), [&fired, a = std::uint64_t{1}, b = std::uint64_t{2},
                       c = std::uint64_t{3}] {
            (void)a;
            (void)b;
            (void)c;
            ++fired;
          }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sched.cancel(ids[i]);
    sched.run();
  }
  EXPECT_EQ(EventFn::heap_constructions(), before);
  EXPECT_GT(fired, 1024u);
}

}  // namespace
}  // namespace tca::sim
