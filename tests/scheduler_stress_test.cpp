// Stress and determinism guard for the rewritten event core.
//
// Randomized schedule/cancel/reschedule interleavings (>=100k fired events)
// assert the invariants the indexed queue must preserve: FIFO stability
// among equal timestamps, cancel-after-fire returning false, run-to-run
// determinism (identical events_processed and fire-order hashes), and
// equivalence with the seed priority_queue baseline backend. Also pins the
// allocation-free guarantee of sim::EventFn for the capture shapes the
// simulator's hot paths use.
//
// Sharded backend coverage: merge mode must reproduce the indexed backend's
// exact global event order under the same churn (including shard-spread
// schedules and full-simulator traces, byte for byte), and epoch mode must
// produce thread-count-invariant per-shard event orders. This file is also
// the target of the ThreadSanitizer stage in scripts/check.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "common/units.h"
#include "fabric/sub_cluster.h"
#include "pcie/tlp.h"
#include "peach2/descriptor.h"
#include "sim/event_fn.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"

namespace tca::sim {
namespace {

using units::ns;

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

struct StressResult {
  std::uint64_t processed = 0;
  std::uint64_t fired = 0;
  TimePs final_now = 0;
  std::uint64_t fire_hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  bool fifo_ok = true;
};

/// Drives `target_fired` events through a Scheduler with a deterministic mix
/// of schedules (some from inside callbacks), cancels of live events, and
/// reschedules (cancel + schedule). Tokens increase in scheduling order, so
/// FIFO stability among equal timestamps is checkable as strictly increasing
/// tokens within each timestamp.
/// `spread_shards` tags each schedule with a shard (token % 7) — the tag
/// routes events across shard queues on the sharded backend and is ignored
/// by the others, so the identical workload remains comparable across all
/// three.
StressResult run_stress(Scheduler::QueueImpl impl, std::uint64_t seed,
                        std::uint64_t target_fired,
                        bool spread_shards = false) {
  Scheduler sched(impl);
  Rng rng(seed);
  StressResult res;
  std::uint64_t next_token = 0;
  TimePs last_time = -1;
  std::uint64_t last_token = 0;
  // Live (cancellable) events: parallel id/token bookkeeping, swap-removed.
  // Entries for fired events are purged before use (fired_flag), so cancel()
  // is only ever invoked on genuinely pending events — where both backends
  // agree; cancel-after-fire semantics get their own dedicated test.
  std::vector<std::pair<Scheduler::EventId, std::uint64_t>> live;
  std::vector<char> fired_flag;

  auto on_fire = [&](std::uint64_t token) {
    const TimePs t = sched.now();
    if (t == last_time && token <= last_token) res.fifo_ok = false;
    last_time = t;
    last_token = token;
    fired_flag[token] = 1;
    ++res.fired;
    res.fire_hash = hash_combine(res.fire_hash, token);
    res.fire_hash = hash_combine(res.fire_hash, static_cast<std::uint64_t>(t));
  };

  auto schedule_one = [&](TimePs at) {
    const std::uint64_t token = next_token++;
    fired_flag.push_back(0);
    const auto id =
        spread_shards
            ? sched.schedule_on(static_cast<std::uint32_t>(token % 7), at,
                                [&, token] { on_fire(token); })
            : sched.schedule_at(at, [&, token] { on_fire(token); });
    live.emplace_back(id, token);
  };

  // Picks a random still-pending entry and removes it from `live`, purging
  // fired entries it stumbles on. Returns kInvalidEvent when none is left.
  auto take_live = [&]() -> Scheduler::EventId {
    while (!live.empty()) {
      const std::size_t i = rng.next_below(live.size());
      const auto [id, token] = live[i];
      live[i] = live.back();
      live.pop_back();
      if (fired_flag[token] == 0) return id;
    }
    return Scheduler::kInvalidEvent;
  };

  while (res.fired < target_fired) {
    const std::uint64_t op = rng.next_below(8);
    if (op < 4 || live.empty()) {
      // Same-timestamp bursts are common (a quarter of schedules reuse the
      // current instant) so the FIFO check actually bites.
      const TimePs at = rng.next_below(4) == 0
                            ? sched.now()
                            : sched.now() + static_cast<TimePs>(
                                                rng.next_below(1000));
      schedule_one(at);
    } else if (op < 5) {
      if (const auto id = take_live(); id != Scheduler::kInvalidEvent) {
        EXPECT_TRUE(sched.cancel(id));
      }
    } else if (op < 6) {
      // Reschedule: cancel + schedule at a new time, as a timeout push-out.
      if (const auto id = take_live(); id != Scheduler::kInvalidEvent) {
        EXPECT_TRUE(sched.cancel(id));
        schedule_one(sched.now() + static_cast<TimePs>(rng.next_below(500)));
      }
    } else {
      sched.step();
    }
  }
  sched.run();
  res.processed = sched.events_processed();
  res.final_now = sched.now();
  EXPECT_TRUE(sched.empty());
  return res;
}

TEST(SchedulerStress, FifoStableAndDeterministicAcrossRuns) {
  const auto a = run_stress(Scheduler::QueueImpl::kIndexed, 0xA11CE, 120'000);
  const auto b = run_stress(Scheduler::QueueImpl::kIndexed, 0xA11CE, 120'000);
  EXPECT_TRUE(a.fifo_ok);
  EXPECT_GE(a.fired, 120'000u);
  EXPECT_EQ(a.processed, b.processed);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.fire_hash, b.fire_hash);
}

TEST(SchedulerStress, IndexedMatchesBaselineImpl) {
  // The two backends must produce identical simulated behavior: same events
  // fire, in the same order, at the same times.
  const auto idx = run_stress(Scheduler::QueueImpl::kIndexed, 0x5EED, 100'000);
  const auto base =
      run_stress(Scheduler::QueueImpl::kBaseline, 0x5EED, 100'000);
  EXPECT_TRUE(idx.fifo_ok);
  EXPECT_TRUE(base.fifo_ok);
  EXPECT_EQ(idx.processed, base.processed);
  EXPECT_EQ(idx.fired, base.fired);
  EXPECT_EQ(idx.final_now, base.final_now);
  EXPECT_EQ(idx.fire_hash, base.fire_hash);
}

// --- Sharded backend: merge mode ---------------------------------------------

TEST(SchedulerStress, ShardedMergeMatchesIndexedUnderChurn) {
  // Shard-spread churn/cancel-heavy load: the merge-mode sharded backend
  // must reproduce the indexed backend's exact global fire order (hash
  // covers token and timestamp of every fire) and be deterministic across
  // runs.
  const auto idx = run_stress(Scheduler::QueueImpl::kIndexed, 0xC0FFEE,
                              100'000, /*spread_shards=*/true);
  const auto sh = run_stress(Scheduler::QueueImpl::kSharded, 0xC0FFEE,
                             100'000, /*spread_shards=*/true);
  const auto sh2 = run_stress(Scheduler::QueueImpl::kSharded, 0xC0FFEE,
                              100'000, /*spread_shards=*/true);
  EXPECT_TRUE(idx.fifo_ok);
  EXPECT_TRUE(sh.fifo_ok);
  EXPECT_EQ(sh.processed, idx.processed);
  EXPECT_EQ(sh.fired, idx.fired);
  EXPECT_EQ(sh.final_now, idx.final_now);
  EXPECT_EQ(sh.fire_hash, idx.fire_hash);
  EXPECT_EQ(sh.processed, sh2.processed);
  EXPECT_EQ(sh.fire_hash, sh2.fire_hash);
}

TEST(SchedulerStress, ShardedMergeMatchesBaselineUntagged) {
  // Untagged schedules (everything lands on shard 0 plus callback-inherited
  // affinity) — the drop-in configuration the full simulator uses.
  const auto base =
      run_stress(Scheduler::QueueImpl::kBaseline, 0xFAB, 60'000);
  const auto sh = run_stress(Scheduler::QueueImpl::kSharded, 0xFAB, 60'000);
  EXPECT_EQ(sh.processed, base.processed);
  EXPECT_EQ(sh.final_now, base.final_now);
  EXPECT_EQ(sh.fire_hash, base.fire_hash);
}

TEST(SchedulerStress, ShardedCancelAfterFireReturnsFalse) {
  // Sharded ids pack (generation, shard, slot); slot reuse inside a shard
  // must not resurrect fired ids.
  Scheduler sched(Scheduler::QueueImpl::kSharded);
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sched.schedule_on(static_cast<std::uint32_t>(i % 5),
                                    ns(i), [] {}));
  }
  sched.run();
  for (auto id : ids) EXPECT_FALSE(sched.cancel(id));
  std::vector<Scheduler::EventId> fresh;
  for (int i = 0; i < 1000; ++i) {
    fresh.push_back(sched.schedule_on(static_cast<std::uint32_t>(i % 5),
                                      sched.now() + ns(1), [] {}));
  }
  for (auto id : ids) EXPECT_FALSE(sched.cancel(id));
  for (auto id : fresh) EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerStress, ShardedFullSimTraceByteIdentical) {
  // The whole simulator, traced, on the merge-mode sharded backend must
  // produce byte-for-byte the trace the indexed backend produces.
  auto traced_run = [](Scheduler::QueueImpl impl) {
    Trace::instance().clear();
    Trace::instance().enable();
    Scheduler sched(impl);
    fabric::SubCluster tca(
        sched, fabric::SubClusterConfig{
                   .spec = fabric::TopologySpec::ring(2),
                   .node_config = {.gpu_count = 2,
                                   .host_backing_bytes = 8 << 20,
                                   .gpu_backing_bytes = 4 << 20}});
    auto t = tca.driver(0).run_chain(
        {peach2::DmaDescriptor{.src = tca.driver(0).internal_global(0),
                               .dst = tca.global_host(1, 0),
                               .length = 64 * 1024,
                               .direction = peach2::DmaDirection::kWrite},
         peach2::DmaDescriptor{.src = tca.driver(0).internal_global(4096),
                               .dst = tca.global_host(1, 1 << 20),
                               .length = 4096,
                               .direction = peach2::DmaDirection::kWrite}});
    sched.run();
    EXPECT_GT(t.result(), 0);
    std::string json = Trace::instance().to_json();
    Trace::instance().disable();
    Trace::instance().clear();
    return std::pair{std::move(json), sched.events_processed()};
  };
  const auto [idx_json, idx_events] =
      traced_run(Scheduler::QueueImpl::kIndexed);
  const auto [sh_json, sh_events] =
      traced_run(Scheduler::QueueImpl::kSharded);
  EXPECT_GT(idx_events, 100u);
  EXPECT_EQ(idx_events, sh_events);
  ASSERT_EQ(idx_json.size(), sh_json.size());
  EXPECT_EQ(idx_json, sh_json);
}

// --- Sharded backend: conservative epochs ------------------------------------

/// Shard-confined ring workload for epoch mode: per-shard self-rescheduling
/// timers (times stay off the multiple-of-5 lattice) and a message chain
/// that crosses to the next shard with the conservative lookahead (arrivals
/// land exactly on the lattice) — so the per-shard event order is tie-free
/// and must be identical whichever mode or worker count executes it.
struct EpochRig {
  Scheduler* sched = nullptr;
  std::uint32_t shards = 0;
  std::vector<std::uint64_t> shard_hash;
  std::vector<std::uint64_t> timer_left;

  void touch(std::uint32_t shard, std::uint64_t key) {
    shard_hash[shard] = hash_combine(
        shard_hash[shard],
        key ^ static_cast<std::uint64_t>(sched->now()));
  }
};

constexpr TimePs kLookaheadPs = 25'000;

void epoch_timer(EpochRig* rig, std::uint32_t shard, std::size_t slot,
                 TimePs period) {
  rig->touch(shard, rig->timer_left[slot]);
  if (--rig->timer_left[slot] == 0) return;
  rig->sched->schedule_on_after(shard, period, [rig, shard, slot, period] {
    epoch_timer(rig, shard, slot, period);
  });
}

void epoch_hop(EpochRig* rig, std::uint32_t shard, std::uint32_t hops_left) {
  rig->touch(shard, 0xB0B + hops_left);
  if (hops_left == 0) return;
  const std::uint32_t next = (shard + 1) % rig->shards;
  const TimePs arrive = (rig->sched->now() + kLookaheadPs + 4) / 5 * 5;
  rig->sched->schedule_on(next, arrive, [rig, next, hops_left] {
    epoch_hop(rig, next, hops_left - 1);
  });
}

std::vector<std::uint64_t> run_epoch_rig(unsigned threads) {
  constexpr std::uint32_t kShards = 8;
  ShardedEngine::Config cfg;
  cfg.shards = kShards;
  cfg.lookahead_ps = kLookaheadPs;
  cfg.threads = threads;
  Scheduler sched(cfg);
  EpochRig rig;
  rig.sched = &sched;
  rig.shards = kShards;
  rig.shard_hash.assign(kShards, 0xcbf29ce484222325ull);
  rig.timer_left.assign(kShards * 2, 3000);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (std::size_t k = 0; k < 2; ++k) {
      // Times ≡ 1..4 (mod 5): never tie with a lattice-aligned arrival.
      sched.schedule_on(s, 1 + (s + k) % 4,
                        [&rig, s, slot = s * 2 + k,
                         period = static_cast<TimePs>(5 * (20 + s + k))] {
                          epoch_timer(&rig, s, slot, period);
                        });
    }
  }
  sched.schedule_on(0, kLookaheadPs, [&rig] { epoch_hop(&rig, 0, 300); });
  sched.run();
  EXPECT_TRUE(sched.empty());
  return rig.shard_hash;
}

TEST(SchedulerStress, EpochModeThreadCountInvariant) {
  const auto merge = run_epoch_rig(0);   // merge mode: global order
  const auto t1 = run_epoch_rig(1);      // epochs, one worker
  const auto t2 = run_epoch_rig(2);      // epochs, two workers
  const auto t4 = run_epoch_rig(4);      // more workers than needed
  EXPECT_EQ(t1, merge);
  EXPECT_EQ(t2, t1);
  EXPECT_EQ(t4, t1);
}

TEST(SchedulerStress, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sched.schedule_at(ns(i), [] {}));
  }
  sched.run();
  for (auto id : ids) EXPECT_FALSE(sched.cancel(id));
  // Slot reuse must not resurrect old ids: new events recycle the slots the
  // fired ones used, yet the stale ids still cancel nothing.
  std::vector<Scheduler::EventId> fresh;
  for (int i = 0; i < 1000; ++i) {
    fresh.push_back(sched.schedule_after(ns(1), [] {}));
  }
  for (auto id : ids) EXPECT_FALSE(sched.cancel(id));
  for (auto id : fresh) EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerStress, CancelledStormDoesNotFire) {
  // Heavy tombstone load: 50k scheduled, all but every 16th cancelled.
  Scheduler sched;
  Rng rng(99);
  std::uint64_t fired = 0;
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 50'000; ++i) {
    ids.push_back(sched.schedule_at(
        static_cast<TimePs>(rng.next_below(1'000'000)), [&fired] { ++fired; }));
  }
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 16 == 0) {
      ++kept;
    } else {
      EXPECT_TRUE(sched.cancel(ids[i]));
    }
  }
  sched.run();
  EXPECT_EQ(fired, kept);
  EXPECT_EQ(sched.events_processed(), kept);
}

// --- EventFn ----------------------------------------------------------------

TEST(EventFn, SimCaptureShapesStayInline) {
  // The capture shapes of the simulator's hot paths: [this] retries,
  // [this, offset, vector] GPU commits, and [this, Tlp] link deliveries.
  struct Fake {
    int hits = 0;
  } fake;
  const std::uint64_t before = EventFn::heap_constructions();

  EventFn small([&fake] { ++fake.hits; });
  EXPECT_FALSE(small.heap_allocated());

  pcie::Tlp tlp;
  tlp.address = 0x1000;
  tlp.payload.resize(4096);
  EventFn delivery([p = &fake, t = std::move(tlp)] { ++p->hits; });
  static_assert(sizeof(pcie::Tlp) + sizeof(void*) <= EventFn::kInlineBytes);
  EXPECT_FALSE(delivery.heap_allocated());

  small();
  delivery();
  EXPECT_EQ(fake.hits, 2);
  EXPECT_EQ(EventFn::heap_constructions(), before);
}

TEST(EventFn, OversizedCapturesFallBackToHeap) {
  const std::uint64_t before = EventFn::heap_constructions();
  struct Big {
    std::byte bytes[256] = {};
  } big;
  int hits = 0;
  EventFn fn([big, &hits] { (void)big; ++hits; });
  EXPECT_TRUE(fn.heap_allocated());
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 1);
  // Moving never re-allocates.
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
}

TEST(EventFn, MoveTransfersStateAndDestroysOnce) {
  int destroyed = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(std::exchange(o.counter, nullptr)) {}
    Probe(const Probe&) = delete;
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
  };
  {
    EventFn a([p = Probe(&destroyed)] { (void)p; });
    EXPECT_TRUE(static_cast<bool>(a));
    EventFn b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EventFn c;
    c = std::move(b);
    EXPECT_TRUE(static_cast<bool>(c));
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(EventFn, SchedulerChurnIsAllocationFree) {
  // Steady-state schedule/cancel/fire churn with representative capture
  // sizes must not advance the EventFn heap counter — the acceptance bar of
  // the allocation-free scheduler rewrite.
  Scheduler sched;
  std::uint64_t fired = 0;
  // Warm up the slot pool and heap capacity.
  for (int i = 0; i < 1024; ++i) {
    sched.schedule_at(ns(i), [&fired, pad = std::uint64_t{0}] {
      (void)pad;
      ++fired;
    });
  }
  sched.run();
  const std::uint64_t before = EventFn::heap_constructions();
  for (int round = 0; round < 100; ++round) {
    std::vector<Scheduler::EventId> ids;
    for (int i = 0; i < 512; ++i) {
      ids.push_back(sched.schedule_after(
          ns(i % 64), [&fired, a = std::uint64_t{1}, b = std::uint64_t{2},
                       c = std::uint64_t{3}] {
            (void)a;
            (void)b;
            (void)c;
            ++fired;
          }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sched.cancel(ids[i]);
    sched.run();
  }
  EXPECT_EQ(EventFn::heap_constructions(), before);
  EXPECT_GT(fired, 1024u);
}

}  // namespace
}  // namespace tca::sim
