// Tests for the conventional-stack baseline: IB fabric timing, MPI-lite
// eager/rendezvous semantics, and the 3-copy GPU path.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/collectives.h"
#include "baseline/conventional.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "baseline/ntb.h"

namespace tca::baseline {
namespace {

using units::ns;
using units::us;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 17 + i) & 0xff);
  }
  return v;
}

struct Rig {
  explicit Rig(std::uint32_t n, int rails = 2) {
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<node::ComputeNode>(
          sched, static_cast<int>(i),
          node::NodeConfig{.gpu_count = 2,
                           .host_backing_bytes = 32 << 20,
                           .gpu_backing_bytes = 8 << 20}));
    }
    std::vector<node::ComputeNode*> ptrs;
    for (auto& p : nodes) ptrs.push_back(p.get());
    fabric = std::make_unique<IbFabric>(sched, ptrs, IbConfig{.rails = rails});
    mpi = std::make_unique<MpiLite>(sched, *fabric);
    conv = std::make_unique<ConventionalGpuComm>(*mpi, ptrs);
  }
  sim::Scheduler sched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  std::unique_ptr<IbFabric> fabric;
  std::unique_ptr<MpiLite> mpi;
  std::unique_ptr<ConventionalGpuComm> conv;
};

TEST(IbFabric, RdmaWriteLandsInRemoteHostMemory) {
  Rig rig(2);
  auto data = pattern(4096, 2);
  auto t = rig.fabric->rdma_write(0, 1, data, 0x1000);
  rig.sched.run();
  std::vector<std::byte> out(4096);
  rig.nodes[1]->host_dram().read(0x1000, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(rig.fabric->messages_sent(), 1u);
}

TEST(IbFabric, LatencyMatchesVerbsConstant) {
  Rig rig(2);
  auto data = pattern(8);
  sim::Trigger delivered(rig.sched);
  auto t = rig.fabric->rdma_write_notify(0, 1, data, 0, &delivered);
  rig.sched.run();
  // 8 bytes: send time negligible, delivery dominated by verbs latency.
  EXPECT_GE(rig.sched.now(), calib::kIbRawLatencyPs);
  EXPECT_LT(rig.sched.now(), calib::kIbRawLatencyPs + ns(100));
}

TEST(IbFabric, DualRailDoublesBandwidth) {
  constexpr std::uint64_t kBytes = 8 << 20;
  auto run = [&](int rails) {
    Rig rig(2, 2);
    auto data = pattern(kBytes);
    auto t = rig.fabric->rdma_write(0, 1, data, 0, rails);
    rig.sched.run();
    return rig.sched.now();
  };
  const TimePs single = run(1);
  const TimePs dual = run(2);
  EXPECT_NEAR(static_cast<double>(single) / static_cast<double>(dual), 2.0,
              0.1);
}

TEST(IbFabric, NicSerializesConcurrentSends) {
  Rig rig(3);
  auto data = pattern(1 << 20);
  auto t1 = rig.fabric->rdma_write(0, 1, data, 0);
  auto t2 = rig.fabric->rdma_write(0, 2, data, 0);
  rig.sched.run();
  // Two 1 MiB sends through one NIC: at least 2x the single-send time.
  const double wire_s = 2.0 * (1 << 20) / (2 * calib::kIbBytesPerSecPerRail);
  EXPECT_GE(units::to_s(rig.sched.now()), wire_s * 0.99);
}

TEST(MpiLite, EagerSendRecvRoundTrip) {
  Rig rig(2);
  auto data = pattern(1024, 3);
  auto tx = rig.mpi->send(0, 1, 7, data);
  auto rx = rig.mpi->recv(1, 0, 7);
  rig.sched.run();
  ASSERT_TRUE(rx.done());
  EXPECT_EQ(rx.result(), data);
  EXPECT_EQ(rig.mpi->eager_sends(), 1u);
  EXPECT_EQ(rig.mpi->rendezvous_sends(), 0u);
}

TEST(MpiLite, RecvBeforeSendMatches) {
  Rig rig(2);
  auto rx = rig.mpi->recv(1, 0, 9);
  auto data = pattern(256, 4);
  rig.sched.schedule_at(us(3), [&] {
    sim::spawn([](MpiLite& mpi, std::span<const std::byte> d) -> sim::Task<> {
      co_await mpi.send(0, 1, 9, d);
    }(*rig.mpi, data));
  });
  rig.sched.run();
  ASSERT_TRUE(rx.done());
  EXPECT_EQ(rx.result(), data);
}

TEST(MpiLite, LargeMessagesUseRendezvous) {
  Rig rig(2);
  auto data = pattern(256 << 10, 5);
  auto tx = rig.mpi->send(0, 1, 1, data);
  auto rx = rig.mpi->recv(1, 0, 1);
  rig.sched.run();
  EXPECT_EQ(rx.result(), data);
  EXPECT_EQ(rig.mpi->rendezvous_sends(), 1u);
}

TEST(MpiLite, TagsKeepStreamsSeparate) {
  Rig rig(2);
  auto a = pattern(64, 6), b = pattern(64, 7);
  auto t1 = rig.mpi->send(0, 1, 100, a);
  auto t2 = rig.mpi->send(0, 1, 200, b);
  auto r2 = rig.mpi->recv(1, 0, 200);
  auto r1 = rig.mpi->recv(1, 0, 100);
  rig.sched.run();
  EXPECT_EQ(r1.result(), a);
  EXPECT_EQ(r2.result(), b);
}

TEST(MpiLite, EagerLatencyIsMicroseconds) {
  // The protocol stack the TCA eliminates: ~1.3 us + copies for a short
  // message, versus PEACH2's sub-microsecond PIO.
  Rig rig(2);
  auto data = pattern(8, 8);
  auto tx = rig.mpi->send(0, 1, 2, data);
  auto rx = rig.mpi->recv(1, 0, 2);
  rig.sched.run();
  EXPECT_GT(rig.sched.now(), ns(900));
  EXPECT_LT(rig.sched.now(), us(4));
}

TEST(MpiLite, SendrecvExchanges) {
  Rig rig(2);
  auto a = pattern(512, 9), b = pattern(512, 10);
  auto t0 = rig.mpi->sendrecv(0, 1, 5, a);
  auto t1 = rig.mpi->sendrecv(1, 0, 5, b);
  rig.sched.run();
  EXPECT_EQ(t0.result(), b);
  EXPECT_EQ(t1.result(), a);
}

TEST(Conventional, ThreeCopyPathMovesGpuData) {
  Rig rig(2);
  auto& src_gpu = rig.nodes[0]->gpu(0);
  auto& dst_gpu = rig.nodes[1]->gpu(0);
  auto data = pattern(64 << 10, 11);
  src_gpu.poke(0x1000, data);

  auto tx = rig.conv->send_gpu(0, 0, 0x1000, data.size(), 1, 3);
  auto rx = rig.conv->recv_gpu(1, 0, 0x2000, data.size(), 0, 3);
  rig.sched.run();
  ASSERT_TRUE(tx.done() && rx.done());

  std::vector<std::byte> out(data.size());
  dst_gpu.peek(0x2000, out);
  EXPECT_EQ(out, data);
}

TEST(Conventional, SmallMessageLatencyIsTensOfMicroseconds) {
  // The motivation in Section I: "the latency caused by multiple memory
  // copies severely degrades the performance, especially ... short message".
  Rig rig(2);
  auto data = pattern(64, 12);
  rig.nodes[0]->gpu(0).poke(0, data);
  auto tx = rig.conv->send_gpu(0, 0, 0, 64, 1, 4);
  auto rx = rig.conv->recv_gpu(1, 0, 0, 64, 0, 4);
  rig.sched.run();
  // Two cudaMemcpy overheads (~7 us each) dominate.
  EXPECT_GT(rig.sched.now(), us(14));
  EXPECT_LT(rig.sched.now(), us(30));
}

TEST(Collectives, BarrierSynchronizesAllRanks) {
  Rig rig(4);
  Collectives coll(*rig.mpi, 4);
  std::vector<TimePs> exit_times(4, -1);
  for (std::uint32_t r = 0; r < 4; ++r) {
    sim::spawn([](Rig& rg, Collectives& c, std::uint32_t rank,
                  std::vector<TimePs>& exits) -> sim::Task<> {
      // Stagger arrivals; nobody may leave before the last arrival.
      co_await sim::Delay(rg.sched, us(rank * 10));
      co_await c.barrier(rank);
      exits[rank] = rg.sched.now();
    }(rig, coll, r, exit_times));
  }
  rig.sched.run();
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_GE(exit_times[r], us(30)) << "rank " << r << " left early";
  }
}

TEST(Collectives, BackToBackBarriersDoNotCrossMatch) {
  Rig rig(2);
  Collectives coll(*rig.mpi, 2);
  int phase_done = 0;
  for (std::uint32_t r = 0; r < 2; ++r) {
    sim::spawn([](Collectives& c, std::uint32_t rank, int& done)
                   -> sim::Task<> {
      co_await c.barrier(rank);
      co_await c.barrier(rank);
      co_await c.barrier(rank);
      ++done;
    }(coll, r, phase_done));
  }
  rig.sched.run();
  EXPECT_EQ(phase_done, 2);
}

TEST(Collectives, AllreduceSumMatchesReference) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::size_t kElems = 64;
  Rig rig(kRanks);
  Collectives coll(*rig.mpi, kRanks);

  std::vector<std::vector<double>> data(kRanks);
  std::vector<double> reference(kElems, 0.0);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    data[r].resize(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      data[r][i] = static_cast<double>((r + 1) * 100 + i);
      reference[i] += data[r][i];
    }
  }
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Collectives& c, std::uint32_t rank,
                  std::span<double> d) -> sim::Task<> {
      co_await c.allreduce_sum(rank, d);
    }(coll, r, std::span(data[r])));
  }
  rig.sched.run();
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < kElems; ++i) {
      EXPECT_DOUBLE_EQ(data[r][i], reference[i])
          << "rank " << r << " elem " << i;
    }
  }
}

TEST(Conventional, PipelinedOverlapBeatsPlainForLargeTransfers) {
  constexpr std::uint64_t kBytes = 4 << 20;
  auto run = [&](bool pipelined) {
    Rig rig(2);
    auto data = pattern(kBytes, 13);
    rig.nodes[0]->gpu(0).poke(0, data);
    sim::Task<> tx = pipelined
                         ? rig.conv->send_gpu_pipelined(0, 0, 0, kBytes, 1, 5)
                         : rig.conv->send_gpu(0, 0, 0, kBytes, 1, 5);
    sim::Task<> rx = pipelined
                         ? rig.conv->recv_gpu_pipelined(1, 0, 0, kBytes, 0, 5)
                         : rig.conv->recv_gpu(1, 0, 0, kBytes, 0, 5);
    rig.sched.run();
    std::vector<std::byte> out(kBytes);
    rig.nodes[1]->gpu(0).peek(0, out);
    EXPECT_EQ(out, data);
    return rig.sched.now();
  };
  const TimePs plain = run(false);
  const TimePs pipelined = run(true);
  EXPECT_LT(pipelined, plain);
}

class CollectiveScale : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollectiveScale, AllreduceCorrectAtEveryRankCount) {
  const std::uint32_t ranks = GetParam();
  Rig rig(ranks);
  Collectives coll(*rig.mpi, ranks);

  const std::size_t elems = 16 * ranks;
  std::vector<std::vector<double>> data(ranks);
  std::vector<double> reference(elems, 0.0);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    data[r].resize(elems);
    for (std::size_t i = 0; i < elems; ++i) {
      data[r][i] = static_cast<double>(r * 7 + i);
      reference[i] += data[r][i];
    }
    sim::spawn([](Collectives& c, std::uint32_t rank,
                  std::span<double> d) -> sim::Task<> {
      co_await c.allreduce_sum(rank, d);
    }(coll, r, std::span(data[r])));
  }
  rig.sched.run();
  for (std::uint32_t r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_DOUBLE_EQ(data[r][i], reference[i])
          << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveScale,
                         ::testing::Values(2, 3, 4, 8, 16));

// --- NTB (Section V related work) ---------------------------------------------

TEST(Ntb, WriteTranslatesIntoPeerHostMemory) {
  Rig rig(2);
  NtbBridge ntb(rig.sched, *rig.nodes[0], *rig.nodes[1],
                NtbConfig{.peer_window_offset = 0x10000});
  auto data = pattern(256, 14);
  auto t = rig.nodes[0]->cpu().mmio_store(ntb.config().aperture_base + 0x40,
                                          data);
  rig.sched.run();

  std::vector<std::byte> out(256);
  rig.nodes[1]->host_dram().read(0x10000 + 0x40, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(ntb.forwarded_tlps(), 1u);
}

TEST(Ntb, BothDirectionsWork) {
  Rig rig(2);
  NtbBridge ntb(rig.sched, *rig.nodes[0], *rig.nodes[1]);
  auto a = pattern(64, 15), b = pattern(64, 16);
  auto t0 = rig.nodes[0]->cpu().mmio_store(ntb.config().aperture_base, a);
  auto t1 =
      rig.nodes[1]->cpu().mmio_store(ntb.config().aperture_base + 4096, b);
  rig.sched.run();

  std::vector<std::byte> out(64);
  rig.nodes[1]->host_dram().read(0, out);
  EXPECT_EQ(out, a);
  rig.nodes[0]->host_dram().read(4096, out);
  EXPECT_EQ(out, b);
}

TEST(Ntb, DisconnectWedgesTheAccessingNode) {
  // "disconnection of the node causes a system reboot" — the property
  // PEACH2 avoids (compare Fault.HostChipConnectionSurvivesFabricLinkLoss).
  Rig rig(2);
  NtbBridge ntb(rig.sched, *rig.nodes[0], *rig.nodes[1]);
  ntb.set_link_up(false);

  auto data = pattern(8, 17);
  auto t = rig.nodes[0]->cpu().mmio_store(ntb.config().aperture_base, data);
  rig.sched.run();

  EXPECT_TRUE(ntb.hung(0));
  EXPECT_FALSE(ntb.hung(1));

  // Restoring the link does NOT recover the node; only a reboot does.
  ntb.set_link_up(true);
  EXPECT_TRUE(ntb.hung(0));
  ntb.reboot(0);
  EXPECT_FALSE(ntb.hung(0));
}

TEST(Ntb, ReadsAcrossBridgeUnsupported) {
  Rig rig(2);
  NtbBridge ntb(rig.sched, *rig.nodes[0], *rig.nodes[1]);
  auto t = rig.nodes[0]->cpu().mmio_load(ntb.config().aperture_base, 8);
  rig.sched.run_for(us(50));
  EXPECT_EQ(ntb.dropped_tlps(), 1u);
  EXPECT_FALSE(t.done());  // the load never completes (no Cpl path)
}

}  // namespace
}  // namespace tca::baseline
