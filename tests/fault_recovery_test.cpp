// Fault-domain recovery tests: deterministic fault plans, completion/chain
// timeouts, error-status registers, driver retry with backoff, and ring
// failover via routing-register rewrite (the Fig. 5 mechanism applied to
// fault handling).
//
// The acceptance pair lives here: a chain crossing a FaultPlan-killed cable
// completes via failover + retry, and with failover disabled the same
// scenario surfaces kTimedOut in the SyncReport within the configured
// deadline instead of hanging the stream.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/tca.h"
#include "common/trace.h"
#include "fabric/fault_plan.h"
#include "fabric/sub_cluster.h"
#include "obs/metrics.h"
#include "peach2/dmac.h"
#include "peach2/registers.h"

namespace tca::fabric {
namespace {

using driver::Peach2Driver;
using peach2::DmaDescriptor;
using peach2::DmaDirection;
using units::ms;
using units::us;

SubClusterConfig cluster_of(std::uint32_t nodes) {
  return SubClusterConfig{
      .spec = TopologySpec::ring(nodes),
      .node_config = {.gpu_count = 2,
                      .host_backing_bytes = 8 << 20,
                      .gpu_backing_bytes = 4 << 20},
  };
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 37 + i) & 0xff);
  }
  return v;
}

// --- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlan, ParsesTheDocumentedExample) {
  auto plan = FaultPlan::parse(
      "flap:cable=0,at=5us,for=100us;ber:cable=1,at=0,for=1ms,rate=1e-6");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const auto& events = plan.value().events;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(events[0].cable, 0u);
  EXPECT_EQ(events[0].at, us(5));
  EXPECT_EQ(events[0].duration, us(100));
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kBerBurst);
  EXPECT_EQ(events[1].cable, 1u);
  EXPECT_EQ(events[1].duration, ms(1));
  EXPECT_DOUBLE_EQ(events[1].ber, 1e-6);
}

TEST(FaultPlan, ToStringParseRoundTrip) {
  FaultPlan plan;
  plan.flap(0, us(5), us(100))
      .cut(2, us(50))
      .up(2, us(900))
      .ber_burst(1, 0, ms(1), 2e-7)
      .stuck_doorbell(3, 1, us(10), us(40));
  auto reparsed = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().to_string(), plan.to_string());
  EXPECT_EQ(reparsed.value().events.size(), plan.events.size());
}

TEST(FaultPlan, EmptySpecIsAnEmptyPlan) {
  auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("nuke:cable=0").is_ok());  // unknown kind
  EXPECT_FALSE(FaultPlan::parse("flap:fuse=0,at=1us,for=1us").is_ok());
  EXPECT_FALSE(FaultPlan::parse("ber:cable=0,at=0,for=1ms").is_ok());  // no rate
  EXPECT_FALSE(FaultPlan::parse("stuck:node=0,ch=1,at=0").is_ok());  // no window
  EXPECT_FALSE(FaultPlan::parse("flap:cable=0,at=-5us,for=1us").is_ok());
  EXPECT_FALSE(FaultPlan::parse("flap:cable=0,at=5lightyears,for=1us").is_ok());
}

// --- Link-down accounting (dropped-in-flight TLPs) --------------------------

TEST(LinkDown, InFlightTlpsAreCountedAndRecovered) {
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_of(2));

  auto data = pattern(64 << 10, 2);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x4000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}});

  sched.run_for(us(4));  // mid-transfer
  tca.set_fabric_up(false);
  EXPECT_GT(tca.cable(0).end_a().dropped_tlps(), 0u);  // knocked off the wire

  // The drop is visible through the metrics surface too.
  obs::MetricRegistry reg;
  tca.export_metrics(reg);
  EXPECT_GT(reg.counter("fabric.link_dropped_tlps").value(), 0u);

  // ...but the data was only delayed: retrain and verify full integrity.
  tca.set_fabric_up(true);
  sched.run();
  ASSERT_TRUE(t.done());
  std::vector<std::byte> out(64 << 10);
  tca.node(1).cpu().read_host(0x4000, out);
  EXPECT_EQ(out, data);
}

// --- Error-status register file ---------------------------------------------

TEST(ErrorRegisters, MaskedErrorsLatchWithoutInterrupting) {
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_of(2));
  namespace r = peach2::regs;
  auto& drv = tca.driver(0);

  // Mask DMA-abort errors, then wedge a remote chain and let the watchdog
  // abort it: the bit must latch in kErrStatus without an interrupt.
  auto mask = drv.write_register(r::kErrMask, r::kErrDmaAbort);
  sched.run();
  tca.set_fabric_up(false);
  tca.chip(0).internal_ram().write(0, pattern(4096, 3));
  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = tca.global_host(1, 0),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}},
      /*channel=*/0, /*timeout_ps=*/us(50));
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(drv.chain_status(0).code(), ErrorCode::kTimedOut);
  EXPECT_EQ(drv.error_irqs(), 0u);  // masked: latched, not serviced
  EXPECT_EQ(tca.chip(0).error_interrupts(), 0u);

  auto status = drv.read_register(r::kErrStatus);
  sched.run();
  EXPECT_NE(status.result() & r::kErrDmaAbort, 0u);  // sticky latch

  // Write-1-to-clear acknowledges exactly the written bits.
  auto ack = drv.write_register(r::kErrAck, r::kErrDmaAbort);
  sched.run();
  auto cleared = drv.read_register(r::kErrStatus);
  sched.run();
  EXPECT_EQ(cleared.result() & r::kErrDmaAbort, 0u);
}

TEST(ErrorRegisters, UnmaskedAbortFiresTheErrorIsr) {
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_of(2));
  auto& drv = tca.driver(0);

  tca.set_fabric_up(false);
  tca.chip(0).internal_ram().write(0, pattern(4096, 4));
  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = tca.global_host(1, 0),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}},
      /*channel=*/0, /*timeout_ps=*/us(50));
  sched.run();
  ASSERT_TRUE(t.done());

  EXPECT_GE(tca.chip(0).error_interrupts(), 1u);
  EXPECT_GE(drv.error_irqs(), 1u);
  EXPECT_NE(drv.error_bits_seen() & peach2::regs::kErrDmaAbort, 0u);
  EXPECT_EQ(drv.watchdog_timeouts(), 1u);

  // The ISR acked what it serviced: status is clear for the next raise.
  auto status = drv.read_register(peach2::regs::kErrStatus);
  sched.run();
  EXPECT_EQ(status.result(), 0u);
}

// --- Ring failover + driver retry (the acceptance scenario) -----------------

TEST(Recovery, ChainCrossingKilledCableCompletesViaFailoverAndRetry) {
  sim::Scheduler sched;
  auto config = cluster_of(4);
  config.fault_plan.cut(0, us(5));  // node0 East, mid-transfer, permanent
  SubCluster tca(sched, config);

  auto data = pattern(64 << 10, 5);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain_reliable(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x2000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}},
      driver::RetryPolicy{.max_attempts = 3, .timeout_ps = us(200)});
  sched.run();
  ASSERT_TRUE(t.done());

  const auto result = t.result();
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GE(result.attempts, 2u);  // first attempt died with the cable
  EXPECT_FALSE(tca.cable_usable(0));
  EXPECT_GE(tca.failovers(), 1u);  // routes rewritten to go the other way
  EXPECT_GE(tca.driver(0).chain_retries(), 1u);
  // The reroute quiesces the in-flight chain immediately — the retry fires
  // off the prompt abort instead of waiting out the watchdog deadline.
  EXPECT_GE(tca.chain_quiesces(), 1u);
  EXPECT_EQ(tca.driver(0).watchdog_timeouts(), 0u);

  std::vector<std::byte> out(64 << 10);
  tca.node(1).cpu().read_host(0x2000, out);
  EXPECT_EQ(out, data);  // delivered the long way around the ring
}

TEST(Recovery, FailbackRestoresShortestPathRoutes) {
  sim::Scheduler sched;
  auto config = cluster_of(4);
  config.fault_plan.flap(0, us(5), us(300));
  SubCluster tca(sched, config);

  sched.run_for(us(50));
  EXPECT_FALSE(tca.cable_usable(0));
  EXPECT_GE(tca.failovers(), 1u);

  sched.run_for(us(400));
  EXPECT_TRUE(tca.cable_usable(0));
  EXPECT_GE(tca.failbacks(), 1u);
}

TEST(Recovery, ApiStreamRecoversWithRetriesVisibleInTheReport) {
  sim::Scheduler sched;
  api::TcaConfig config{.spec = fabric::TopologySpec::ring(4)};
  config.fault_plan.cut(0, us(5));
  api::Runtime rt(sched, config);

  constexpr std::uint64_t kBytes = 256 << 10;
  auto src = rt.alloc_host(0, kBytes);
  auto dst = rt.alloc_host(1, kBytes);
  ASSERT_TRUE(src.is_ok() && dst.is_ok());
  auto data = pattern(kBytes, 6);
  rt.write(src.value(), 0, data);

  api::Stream stream(rt);
  ASSERT_TRUE(stream.enqueue_copy(dst.value(), 0, src.value(), 0, kBytes)
                  .is_ok());
  auto t = stream.synchronize(
      api::SyncOptions{.deadline_ps = us(150), .max_attempts = 3});
  sched.run();
  ASSERT_TRUE(t.done());

  const auto report = t.result();
  EXPECT_TRUE(report.ok()) << report.status.to_string();
  EXPECT_GE(report.total_retries(), 1u);
  ASSERT_EQ(report.ops.size(), 1u);
  EXPECT_GE(report.ops[0].retries, 1u);
  EXPECT_GE(rt.cluster().failovers(), 1u);

  std::vector<std::byte> out(kBytes);
  rt.read(dst.value(), 0, out);
  EXPECT_EQ(out, data);
}

TEST(Recovery, WithoutFailoverTheDeadlineSurfacesTimedOutInsteadOfHanging) {
  sim::Scheduler sched;
  api::TcaConfig config{.spec = fabric::TopologySpec::ring(2)};
  config.fault_plan.cut(0, us(5));
  config.enable_failover = false;
  api::Runtime rt(sched, config);

  constexpr std::uint64_t kBytes = 256 << 10;
  auto src = rt.alloc_host(0, kBytes);
  auto dst = rt.alloc_host(1, kBytes);
  ASSERT_TRUE(src.is_ok() && dst.is_ok());
  rt.write(src.value(), 0, pattern(kBytes, 7));

  api::Stream stream(rt);
  ASSERT_TRUE(stream.enqueue_copy(dst.value(), 0, src.value(), 0, kBytes)
                  .is_ok());
  auto t = stream.synchronize(api::SyncOptions{.deadline_ps = us(500)});
  sched.run();

  // The whole point: the simulation ran dry (no hang) and the report says
  // kTimedOut within deadline + ISR/teardown slack.
  ASSERT_TRUE(t.done());
  const auto report = t.result();
  EXPECT_TRUE(report.timed_out()) << report.status.to_string();
  ASSERT_EQ(report.ops.size(), 1u);
  EXPECT_EQ(report.ops[0].status.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(report.total_retries(), 0u);
  EXPECT_LE(sched.now(), us(700));
  EXPECT_EQ(rt.cluster().failovers(), 0u);
}

// --- Stuck doorbell + chain watchdog ----------------------------------------

TEST(Recovery, StuckDoorbellIsRiddenOutByWatchdogAndBackoff) {
  sim::Scheduler sched;
  auto config = cluster_of(2);
  config.fault_plan.stuck_doorbell(/*node=*/0, /*channel=*/0, 0, us(50));
  SubCluster tca(sched, config);

  auto data = pattern(4096, 8);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain_reliable(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.driver(0).host_buffer_global(0x3000),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}},
      driver::RetryPolicy{.max_attempts = 5, .timeout_ps = us(30)});
  sched.run();
  ASSERT_TRUE(t.done());

  const auto result = t.result();
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GE(result.attempts, 2u);  // swallowed doorbell cost at least one
  EXPECT_GE(tca.driver(0).watchdog_timeouts(), 1u);
  EXPECT_GT(sched.now(), us(50));  // recovery happened after the window

  std::vector<std::byte> out(4096);
  tca.node(0).cpu().read_host(0x3000, out);
  EXPECT_EQ(out, data);
}

// --- Determinism ------------------------------------------------------------

// One full campaign: flap + BER burst while a reliable chain runs. Returns
// the trace JSON of the run.
std::string run_traced_campaign() {
  Trace::instance().clear();
  Trace::instance().enable();
  sim::Scheduler sched;
  auto config = cluster_of(2);
  config.fault_plan.flap(0, us(5), us(100)).ber_burst(1, 0, ms(1), 1e-6);
  SubCluster tca(sched, config);

  auto data = pattern(32 << 10, 9);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain_reliable(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x1000),
                     .length = 32 << 10,
                     .direction = DmaDirection::kWrite}},
      driver::RetryPolicy{.max_attempts = 4, .timeout_ps = us(200)});
  sched.run();
  EXPECT_TRUE(t.done());
  EXPECT_TRUE(t.result().status.is_ok()) << t.result().status.to_string();

  std::string json = Trace::instance().to_json();
  Trace::instance().disable();
  Trace::instance().clear();
  return json;
}

TEST(Determinism, SameFaultPlanSameSeedProducesIdenticalTraces) {
  const std::string first = run_traced_campaign();
  const std::string second = run_traced_campaign();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- High-BER soak (ctest label: soak; excluded from the tier-1 default) ----

TEST(Soak, HighBerLinkDeliversEveryByteWithNonzeroReplays) {
  sim::Scheduler sched;
  auto config = cluster_of(2);
  config.cable_bit_error_rate = 1e-5;  // LCRC failures every few hundred TLPs
  SubCluster tca(sched, config);

  constexpr std::uint64_t kBytes = 256 << 10;
  for (std::uint8_t round = 0; round < 8; ++round) {
    auto data = pattern(kBytes, static_cast<std::uint8_t>(round + 10));
    tca.chip(0).internal_ram().write(0, data);
    auto t = tca.driver(0).run_chain(
        {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                       .dst = tca.global_host(1, 0x8000),
                       .length = kBytes,
                       .direction = DmaDirection::kWrite}});
    sched.run();
    ASSERT_TRUE(t.done());

    std::vector<std::byte> out(kBytes);
    tca.node(1).cpu().read_host(0x8000, out);
    ASSERT_EQ(out, data) << "payload corrupted in round " << int{round};
  }

  // The data-link layer worked for that integrity: replays must show up.
  std::uint64_t replays = 0;
  for (std::size_t k = 0; k < tca.cable_count(); ++k) {
    replays += tca.cable(k).end_a().replays() + tca.cable(k).end_b().replays();
  }
  EXPECT_GT(replays, 0u);
}

}  // namespace
}  // namespace tca::fabric
