// Fault injection and management-plane tests.
//
// Section V contrasts PEACH2 with NTB-based fabrics: "the NTB ... during
// the BIOS scan at boot time, the host must recognize the EPs in the NTB
// and disconnection of the node causes a system reboot. On the other hand,
// the PEACH2 chip has independent PCIe ports, and the link state with the
// other node has no impact on the connection between the host and the
// PEACH2 chip." These tests take fabric links down mid-traffic and verify
// exactly that property, plus the NIOS management processor's view of it.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/sub_cluster.h"
#include "peach2/nios.h"
#include "peach2/registers.h"

namespace tca::fabric {
namespace {

using driver::Peach2Driver;
using peach2::DmaDescriptor;
using peach2::DmaDirection;
using peach2::PortId;
using units::ns;
using units::us;

SubClusterConfig small_cluster() {
  return SubClusterConfig{
      .spec = TopologySpec::ring(2),
      .node_config = {.gpu_count = 2,
                      .host_backing_bytes = 8 << 20,
                      .gpu_backing_bytes = 4 << 20},
  };
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 37 + i) & 0xff);
  }
  return v;
}

TEST(Fault, HostChipConnectionSurvivesFabricLinkLoss) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());

  // Take the inter-node fabric down.
  tca.set_fabric_up(false);
  sched.run_for(us(50));

  // The host <-> PEACH2 connection is unaffected: register reads work...
  auto id = tca.driver(0).read_register(peach2::regs::kChipId);
  sched.run();
  EXPECT_EQ(id.result(), peach2::regs::kChipIdValue);

  // ...and local DMA works (internal RAM -> local host).
  auto data = pattern(4096, 2);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.driver(0).host_buffer_global(0x1000),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());
  std::vector<std::byte> out(4096);
  tca.node(0).cpu().read_host(0x1000, out);
  EXPECT_EQ(out, data);
}

TEST(Fault, RemoteTrafficStallsAndResumesAcrossOutage) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());

  // Kill the fabric, then issue a remote PIO store: it must be held, not
  // lost, and must deliver after the link comes back.
  tca.set_fabric_up(false);
  auto data = pattern(4, 3);
  auto store = tca.driver(0).pio_store(tca.global_host(1, 0x300), data);
  sched.run_for(us(100));

  std::vector<std::byte> out(4);
  tca.node(1).cpu().read_host(0x300, out);
  EXPECT_NE(out, data);  // outage: nothing arrived

  tca.set_fabric_up(true);
  sched.run();
  tca.node(1).cpu().read_host(0x300, out);
  EXPECT_EQ(out, data);  // link restored: held TLP delivered
}

TEST(Fault, RemoteDmaCompletesAfterMidTransferOutage) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());

  auto data = pattern(64 << 10, 4);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x4000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}});

  // Outage in the middle of the transfer; restore after 200 us.
  sched.run_for(us(4));
  tca.set_fabric_up(false);
  EXPECT_FALSE(t.done());
  sched.run_for(us(200));
  EXPECT_FALSE(t.done());  // chain waits for the delivery notification
  tca.set_fabric_up(true);
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(64 << 10);
  tca.node(1).cpu().read_host(0x4000, out);
  EXPECT_EQ(out, data);  // nothing lost, nothing duplicated
  EXPECT_GE(t.result(), us(200));  // the outage is visible in the timing
}

TEST(Nios, LogsLinkTransitionsWithServiceDelay) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  auto& nios = tca.chip(0).nios();
  const auto attach_events = nios.event_count();  // N/E/W cabled at build

  tca.set_fabric_up(false);
  sched.run_for(peach2::NiosController::kServiceDelay + ns(100));
  EXPECT_GT(nios.event_count(), attach_events);
  EXPECT_FALSE(nios.link_view(PortId::kEast));
  EXPECT_TRUE(nios.link_view(PortId::kNorth));  // host link untouched

  tca.set_fabric_up(true);
  sched.run_for(peach2::NiosController::kServiceDelay + ns(100));
  EXPECT_TRUE(nios.link_view(PortId::kEast));
}

TEST(Nios, LinkStatusRegistersTrackOutages) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  namespace r = peach2::regs;

  auto east_up = tca.driver(0).read_register(r::kLinkStatusBase + 8);
  sched.run();
  EXPECT_EQ(east_up.result(), r::kLinkUp);

  tca.set_fabric_up(false);
  auto east_down = tca.driver(0).read_register(r::kLinkStatusBase + 8);
  auto north_still = tca.driver(0).read_register(r::kLinkStatusBase + 0);
  sched.run();
  EXPECT_EQ(east_down.result(), r::kLinkDown);
  EXPECT_EQ(north_still.result(), r::kLinkUp);
}

TEST(Nios, ManagementCommandsPingAndClear) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  namespace r = peach2::regs;
  Peach2Driver& drv = tca.driver(0);

  // The closure must outlive the coroutine: a temporary lambda would be
  // destroyed at the semicolon while the task is still suspended on MMIO.
  auto cmds_fn = [&]() -> sim::Task<> {
    co_await drv.write_register(r::kNiosCmd, peach2::NiosController::kCmdPing);
    co_await drv.write_register(r::kNiosCmd, peach2::NiosController::kCmdPing);
  };
  auto cmds = cmds_fn();
  sched.run();
  auto pings = drv.read_register(r::kNiosPingCount);
  sched.run();
  EXPECT_EQ(pings.result(), 2u);

  auto clear = drv.write_register(r::kNiosCmd,
                                  peach2::NiosController::kCmdClearEvents);
  sched.run();
  auto events = drv.read_register(r::kNiosEventCount);
  sched.run();
  EXPECT_EQ(events.result(), 0u);
}

TEST(Nios, UptimeAdvances) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  sched.run_until(us(123));
  auto uptime = tca.driver(0).read_register(peach2::regs::kNiosUptime);
  sched.run();
  EXPECT_GE(uptime.result(), 123'000u);  // nanoseconds
}

TEST(DmacErrors, InvalidWriteSourceSetsErrorBit) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  // kWrite requires the source in the chip's own internal block.
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.global_host(0, 0),
                     .dst = tca.global_host(1, 0),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_GT(tca.chip(0).dmac().errors(), 0u);
  EXPECT_NE(tca.chip(0).dmac().status() & 4ull, 0u);
}

TEST(DmacErrors, ErrorStopsChainButStillSignalsCompletion) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  auto& drv = tca.driver(0);
  auto good = pattern(1024, 5);
  tca.chip(0).internal_ram().write(0, good);

  // Descriptor 2 is invalid; descriptor 3 must not run.
  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = drv.host_buffer_global(0x100),
                     .length = 1024,
                     .direction = DmaDirection::kWrite},
       DmaDescriptor{.src = tca.global_host(1, 0),  // remote read: invalid
                     .dst = drv.internal_global(0),
                     .length = 64,
                     .direction = DmaDirection::kRead},
       DmaDescriptor{.src = drv.internal_global(0),
                     .dst = drv.host_buffer_global(0x4000),
                     .length = 1024,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());  // completion interrupt still fired

  std::vector<std::byte> out(1024);
  tca.node(0).cpu().read_host(0x100, out);
  EXPECT_EQ(out, good);  // descriptor 1 executed
  tca.node(0).cpu().read_host(0x4000, out);
  EXPECT_NE(out, good);  // descriptor 3 aborted
  EXPECT_EQ(tca.chip(0).dmac().descriptors_completed(), 2u);  // 1 ok + 1 err
}

TEST(DmacErrors, ImmediateKickValidatesLength) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  namespace r = peach2::regs;
  auto& drv = tca.driver(0);

  // Named closure: it must outlive the suspended coroutine (see above).
  auto prog_fn = [&]() -> sim::Task<> {
    co_await drv.write_register(r::kDmaImmSrc, drv.internal_global(0));
    co_await drv.write_register(r::kDmaImmDst, tca.global_host(1, 0));
    co_await drv.write_register(r::kDmaImmLen, 0);  // zero length
    co_await drv.write_register(r::kDmaImmKick, 1);
  };
  auto prog = prog_fn();
  sched.run();
  EXPECT_NE(tca.chip(0).dmac().status() & 4ull, 0u);  // error latched
  EXPECT_FALSE(tca.chip(0).dmac().busy());
}

TEST(DmacErrors, DoorbellWhileBusyIgnored) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  auto& drv = tca.driver(0);
  auto data = pattern(256 << 10, 6);
  tca.chip(0).internal_ram().write(0, data);

  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = tca.global_host(1, 0),
                     .length = 256 << 10,
                     .direction = DmaDirection::kWrite}});
  sched.run_for(us(5));
  EXPECT_TRUE(tca.chip(0).dmac().busy());
  const auto chains_before = tca.chip(0).dmac().chains_completed();
  tca.chip(0).write_register(peach2::regs::kDmaDoorbell, 1);  // ignored
  tca.chip(0).write_register(peach2::regs::kDmaImmKick, 1);   // ignored
  sched.run();
  EXPECT_EQ(tca.chip(0).dmac().chains_completed(), chains_before + 1);
}

TEST(GpuFaults, UnpinnedDmaWriteDropsAndCounts) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster());
  auto& drv = tca.driver(0);
  auto data = pattern(4096, 7);
  tca.chip(0).internal_ram().write(0, data);

  // GPU memory never pinned: the write must be dropped at the GPU.
  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = drv.gpu_global(0, 0x10000),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_GT(tca.node(0).gpu(0).access_errors(), 0u);
}

}  // namespace
}  // namespace tca::fabric
