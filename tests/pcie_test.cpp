// Unit tests for the PCIe substrate: TLP framing/overhead math and the
// link model (serialization timing, ordering, credit backpressure).
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "calib/calibration.h"
#include "common/units.h"
#include "pcie/link.h"
#include "pcie/tlp.h"
#include "sim/scheduler.h"

namespace tca::pcie {
namespace {

using units::ns;
using units::us;

std::vector<std::byte> make_payload(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return v;
}

TEST(Tlp, WriteWireBytesMatchPaperFormula) {
  auto payload = make_payload(256);
  Tlp tlp = Tlp::mem_write(0x1000, payload);
  // 256 payload + 16 header + 2 seq + 4 LCRC + 2 framing = 280 (the paper's
  // 256/280 efficiency term).
  EXPECT_EQ(tlp.wire_bytes(), 280u);
}

TEST(Tlp, ReadRequestIsHeaderOnly) {
  Tlp tlp = Tlp::mem_read(0x1000, 512, /*requester=*/3, /*tag=*/7);
  EXPECT_EQ(tlp.wire_bytes(), 24u);
  EXPECT_EQ(tlp.length, 512u);
  EXPECT_EQ(tlp.byte_count_remaining, 512u);
  EXPECT_TRUE(tlp.payload.empty());
}

TEST(Tlp, CompletionTracksRemainderAndOffset) {
  Tlp req = Tlp::mem_read(0x1000, 512, 3, 7);
  auto first = make_payload(256);
  Tlp cpl1 = Tlp::completion(req, first, /*byte_count_remaining=*/512);
  EXPECT_EQ(cpl1.address, 0x1000u);
  EXPECT_EQ(cpl1.tag, 7);
  EXPECT_EQ(cpl1.requester, 3);
  Tlp cpl2 = Tlp::completion(req, first, /*byte_count_remaining=*/256);
  EXPECT_EQ(cpl2.address, 0x1100u);  // second half of the read
}

TEST(Tlp, VendorMsgRoutesByAddress) {
  Tlp msg = Tlp::vendor_msg(0xdead000, 9, 1);
  EXPECT_EQ(msg.type, TlpType::kVendorMsg);
  EXPECT_EQ(msg.wire_bytes(), 24u);
}

TEST(Tlp, ChunkingHonorsMaxPayload) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> chunks;
  for_each_payload_chunk(0x100, 600, 256, [&](std::uint64_t off,
                                              std::uint32_t len) {
    chunks.emplace_back(off, len);
  });
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], std::make_pair(std::uint64_t{0x100}, 256u));
  EXPECT_EQ(chunks[1], std::make_pair(std::uint64_t{0x200}, 256u));
  EXPECT_EQ(chunks[2], std::make_pair(std::uint64_t{0x300}, 88u));
}

TEST(LinkConfig, Gen2x8Is4GBs) {
  LinkConfig cfg{.gen = 2, .lanes = 8};
  EXPECT_DOUBLE_EQ(cfg.raw_bytes_per_sec(), 4e9);
  EXPECT_DOUBLE_EQ(cfg.ps_per_byte(), 250.0);
  // A full 280-byte TLP takes 70 ns.
  EXPECT_EQ(cfg.serialize_ps(280), ns(70));
}

TEST(LinkConfig, OtherGenerations) {
  EXPECT_DOUBLE_EQ((LinkConfig{.gen = 1, .lanes = 4}).raw_bytes_per_sec(),
                   1e9);
  EXPECT_DOUBLE_EQ((LinkConfig{.gen = 2, .lanes = 16}).raw_bytes_per_sec(),
                   8e9);
  EXPECT_NEAR((LinkConfig{.gen = 3, .lanes = 8}).raw_bytes_per_sec(), 7.877e9,
              0.01e9);
}

/// Test sink recording TLPs and optionally holding credits.
class RecordingSink : public TlpSink {
 public:
  explicit RecordingSink(sim::Scheduler& sched, bool auto_release = true)
      : sched_(sched), auto_release_(auto_release) {}

  void on_tlp(Tlp tlp, LinkPort& port) override {
    arrival_times.push_back(sched_.now());
    received.push_back(std::move(tlp));
    if (auto_release_) {
      port.release_rx(received.back().wire_bytes());
    } else {
      held_.push_back(&port);
    }
  }

  void release_one() {
    ASSERT_FALSE(held_.empty());
    LinkPort* port = held_.front();
    held_.erase(held_.begin());
    port->release_rx(received[released_++].wire_bytes());
  }

  std::vector<Tlp> received;
  std::vector<TimePs> arrival_times;

 private:
  sim::Scheduler& sched_;
  bool auto_release_;
  std::vector<LinkPort*> held_;
  std::size_t released_ = 0;
};

TEST(Link, DeliversPayloadIntact) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);

  auto payload = make_payload(128, 42);
  link.end_a().send(Tlp::mem_write(0xabc0, payload));
  sched.run();

  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].address, 0xabc0u);
  EXPECT_EQ(sink.received[0].payload, payload);
}

TEST(Link, SerializationTimeMatchesWireBytes) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);

  link.end_a().send(Tlp::mem_write(0, make_payload(256)));
  sched.run();
  ASSERT_EQ(sink.arrival_times.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], ns(70));  // 280 B at 250 ps/B
}

TEST(Link, PropagationDelayAdds) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8, .propagation_ps = ns(25)});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);
  link.end_a().send(Tlp::mem_write(0, make_payload(256)));
  sched.run();
  EXPECT_EQ(sink.arrival_times.at(0), ns(95));
}

TEST(Link, BackToBackTlpsPipelineAtLineRate) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);

  for (int i = 0; i < 4; ++i) {
    link.end_a().send(Tlp::mem_write(static_cast<std::uint64_t>(i) * 256,
                                     make_payload(256)));
  }
  sched.run();
  ASSERT_EQ(sink.arrival_times.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.arrival_times[static_cast<std::size_t>(i)],
              ns(70) * (i + 1));
  }
}

TEST(Link, FullDuplexDirectionsIndependent) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink_a(sched), sink_b(sched);
  link.end_a().set_sink(&sink_a);
  link.end_b().set_sink(&sink_b);

  link.end_a().send(Tlp::mem_write(0, make_payload(256)));
  link.end_b().send(Tlp::mem_write(0, make_payload(256)));
  sched.run();
  // Both arrive at 70 ns: no shared-medium contention.
  EXPECT_EQ(sink_a.arrival_times.at(0), ns(70));
  EXPECT_EQ(sink_b.arrival_times.at(0), ns(70));
}

TEST(Link, CreditExhaustionStallsSender) {
  sim::Scheduler sched;
  // Rx buffer fits exactly two 280-byte TLPs.
  PcieLink link(sched, {.gen = 2, .lanes = 8, .rx_buffer_bytes = 560});
  RecordingSink sink(sched, /*auto_release=*/false);
  link.end_b().set_sink(&sink);

  for (int i = 0; i < 3; ++i) {
    link.end_a().send(Tlp::mem_write(0, make_payload(256)));
  }
  sched.run();
  // Third TLP blocked: receiver holds credits.
  EXPECT_EQ(sink.received.size(), 2u);

  sink.release_one();
  sched.run();
  EXPECT_EQ(sink.received.size(), 3u);
}

TEST(Link, TxQueueBoundedAndReadyCallbackFires) {
  sim::Scheduler sched;
  PcieLink link(sched,
                {.gen = 2, .lanes = 8, .tx_queue_bytes = 600});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);

  Tlp t1 = Tlp::mem_write(0, make_payload(256));
  Tlp t2 = Tlp::mem_write(0, make_payload(256));
  Tlp t3 = Tlp::mem_write(0, make_payload(256));
  ASSERT_TRUE(link.end_a().can_send(t1));
  link.end_a().send(std::move(t1));
  // First TLP starts transmitting immediately (leaves the queue), so there
  // is room for two more queued.
  ASSERT_TRUE(link.end_a().can_send(t2));
  link.end_a().send(std::move(t2));
  ASSERT_TRUE(link.end_a().can_send(t3));
  link.end_a().send(std::move(t3));
  EXPECT_FALSE(link.end_a().can_send(Tlp::mem_write(0, make_payload(256))));

  int ready_calls = 0;
  link.end_a().set_tx_ready([&] { ++ready_calls; });
  sched.run();
  EXPECT_GT(ready_calls, 0);
  EXPECT_EQ(sink.received.size(), 3u);
}

TEST(Link, StatsCountWireAndPayloadBytes) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);
  link.end_a().send(Tlp::mem_write(0, make_payload(256)));
  link.end_a().send(Tlp::mem_read(0, 256, 1, 0));
  sched.run();
  EXPECT_EQ(link.end_a().tlps_sent(), 2u);
  EXPECT_EQ(link.end_a().wire_bytes_sent(), 280u + 24u);
  EXPECT_EQ(link.end_a().payload_bytes_sent(), 256u);
}

TEST(Link, ReplayRecoversCorruptedTlpsInOrder) {
  // The "Reliable" in PEARL: LCRC failures trigger replay, never loss or
  // reorder. Deterministic (seeded) error process.
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2,
                        .lanes = 8,
                        .bit_error_rate = 1e-5,  // ~2% per 280 B TLP
                        .error_seed = 77});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);

  std::vector<Tlp> sent;
  for (int i = 0; i < 200; ++i) {
    sent.push_back(Tlp::mem_write(static_cast<std::uint64_t>(i) * 0x100,
                                  make_payload(256, static_cast<std::uint8_t>(i))));
  }
  std::size_t next = 0;
  std::function<void()> pump = [&] {
    while (next < sent.size() && link.end_a().can_send(sent[next])) {
      Tlp copy = sent[next];
      link.end_a().send(std::move(copy));
      ++next;
    }
  };
  link.end_a().set_tx_ready(pump);
  pump();
  sched.run();

  EXPECT_GT(link.end_a().replays(), 0u);
  ASSERT_EQ(sink.received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(sink.received[i].address, sent[i].address) << i;
    EXPECT_EQ(sink.received[i].payload, sent[i].payload) << i;
  }
}

TEST(Link, ZeroBerMeansZeroReplays) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);
  for (int i = 0; i < 50; ++i) {
    link.end_a().send(Tlp::mem_write(0, make_payload(64)));
    sched.run();
  }
  EXPECT_EQ(link.end_a().replays(), 0u);
}

TEST(Link, ReplaysCostTimeButNotData) {
  auto run = [](double ber) {
    sim::Scheduler sched;
    PcieLink link(sched,
                  {.gen = 2, .lanes = 8, .bit_error_rate = ber,
                   .error_seed = 123});
    RecordingSink sink(sched);
    link.end_b().set_sink(&sink);
    std::size_t bytes = 0;
    std::size_t next = 0;
    std::function<void()> pump = [&] {
      while (next < 500) {
        Tlp tlp = Tlp::mem_write(0, make_payload(256));
        if (!link.end_a().can_send(tlp)) return;
        link.end_a().send(std::move(tlp));
        ++next;
      }
    };
    link.end_a().set_tx_ready(pump);
    pump();
    sched.run();
    (void)bytes;
    return std::pair(sched.now(), sink.received.size());
  };
  const auto [clean_time, clean_count] = run(0);
  const auto [noisy_time, noisy_count] = run(1e-5);
  EXPECT_EQ(clean_count, noisy_count);
  EXPECT_GT(noisy_time, clean_time);
}

TEST(Link, SustainedThroughputMatchesPaperPeak) {
  sim::Scheduler sched;
  PcieLink link(sched, {.gen = 2, .lanes = 8});
  RecordingSink sink(sched);
  link.end_b().set_sink(&sink);

  // Feed 1 MiB in max-payload TLPs through a feeder loop.
  constexpr std::uint64_t kTotal = 1 << 20;
  std::uint64_t sent = 0;
  std::function<void()> pump = [&] {
    while (sent < kTotal) {
      Tlp t = Tlp::mem_write(sent, make_payload(calib::kMaxPayloadBytes));
      if (!link.end_a().can_send(t)) return;
      link.end_a().send(std::move(t));
      sent += calib::kMaxPayloadBytes;
    }
  };
  link.end_a().set_tx_ready(pump);
  pump();
  sched.run();

  const double gbps = units::gbytes_per_second(kTotal, sched.now());
  EXPECT_NEAR(gbps, 3.657, 0.02);  // the paper's theoretical peak
}

}  // namespace
}  // namespace tca::pcie
