// Integration tests across the whole stack: sub-cluster construction, PIO
// stores across the ring, chained DMA (local and remote, CPU and GPU
// targets), the put-only restriction, the pipelined-DMAC extension, the
// register path, and multi-hop routing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/sub_cluster.h"
#include "peach2/registers.h"

namespace tca::fabric {
namespace {

using driver::Peach2Driver;
using peach2::DmaDescriptor;
using peach2::DmaDirection;
using peach2::TcaTarget;
using units::gbytes_per_second;
using units::ns;
using units::us;

SubClusterConfig small_cluster(std::uint32_t nodes,
                               Topology topo = Topology::kRing) {
  return SubClusterConfig{
      .spec = TopologySpec::from_legacy(topo, nodes),
      .node_config = {.gpu_count = 2,
                      .host_backing_bytes = 8 << 20,
                      .gpu_backing_bytes = 4 << 20},
  };
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 7 + i * 3) & 0xff);
  }
  return v;
}

TEST(SubCluster, BuildsRingWithRoutes) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(4));
  EXPECT_EQ(tca.size(), 4u);
  // Every chip has one route per other node.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tca.chip(i).routing().size(), 3u);
    EXPECT_TRUE(tca.chip(i).link_up(peach2::PortId::kNorth));
    EXPECT_TRUE(tca.chip(i).link_up(peach2::PortId::kEast));
    EXPECT_TRUE(tca.chip(i).link_up(peach2::PortId::kWest));
    EXPECT_FALSE(tca.chip(i).link_up(peach2::PortId::kSouth));
  }
  EXPECT_EQ(tca.hops(0, 2), 2u);
  EXPECT_EQ(tca.hops(0, 3), 1u);
}

TEST(SubCluster, PioStoreReachesRemoteHost) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  auto data = pattern(4, 2);

  auto t = tca.driver(0).pio_store(tca.global_host(1, 0x100), data);
  sched.run();

  std::vector<std::byte> out(4);
  tca.node(1).cpu().read_host(
      tca.driver(1).host_layout().dma_buffer_offset + 0x100, out);
  // Host block offset 0x100 lands at DMA-buffer offset 0x100 (buffer is at
  // host offset 0).
  EXPECT_EQ(out, data);
}

TEST(SubCluster, PioLatencyIsSubMicrosecond) {
  // The paper's headline: 782 ns between adjacent nodes. Store + poll.
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));

  std::uint32_t zero = 0;
  tca.node(1).cpu().write_host(0x100, std::as_bytes(std::span(&zero, 1)));
  auto poll = tca.node(1).cpu().poll_host_until_change(0x100, 0);

  const TimePs t0 = sched.now();
  auto store = tca.driver(0).pio_store_u32(tca.global_host(1, 0x100), 42);
  sched.run();
  ASSERT_TRUE(poll.done());
  const TimePs latency = poll.result() - t0;
  EXPECT_GT(latency, ns(500));
  EXPECT_LT(latency, ns(1100));
}

TEST(SubCluster, PioToOwnNodeLoopsBackThroughChip) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  auto data = pattern(8, 3);

  auto t = tca.driver(0).pio_store(tca.global_host(0, 0x40), data);
  sched.run();

  std::vector<std::byte> out(8);
  tca.node(0).cpu().read_host(0x40, out);
  EXPECT_EQ(out, data);
}

TEST(SubCluster, DmaLocalWriteToHost) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);

  auto data = pattern(4096, 4);
  tca.chip(0).internal_ram().write(0, data);

  auto t = drv.run_chain({DmaDescriptor{.src = drv.internal_global(0),
                                        .dst = drv.host_buffer_global(0x1000),
                                        .length = 4096,
                                        .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());
  const TimePs elapsed = t.result();

  std::vector<std::byte> out(4096);
  tca.node(0).cpu().read_host(0x1000, out);
  EXPECT_EQ(out, data);
  // Single 4 KiB descriptor: ~2.1 us fixed + ~1.2 us transfer.
  EXPECT_GT(elapsed, us(2));
  EXPECT_LT(elapsed, us(6));
  EXPECT_EQ(tca.chip(0).dmac().errors(), 0u);
}

TEST(SubCluster, DmaLocalReadFromHost) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);

  auto data = pattern(8192, 5);
  tca.node(0).cpu().write_host(0x4000, data);

  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.host_buffer_global(0x4000),
                     .dst = drv.internal_global(0x100),
                     .length = 8192,
                     .direction = DmaDirection::kRead}});
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(8192);
  tca.chip(0).internal_ram().read(0x100, out);
  EXPECT_EQ(out, data);
}

TEST(SubCluster, DmaLocalWriteToGpuViaGpuDirect) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);
  auto& gpu = tca.node(0).gpu(0);

  auto ptr = gpu.mem_alloc(64 << 10);
  ASSERT_TRUE(ptr.is_ok());
  ASSERT_TRUE(drv.p2p().pin(0, ptr.value(), 64 << 10).is_ok());

  auto data = pattern(4096, 6);
  tca.chip(0).internal_ram().write(0, data);

  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = drv.gpu_global(0, ptr.value()),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(4096);
  gpu.peek(ptr.value(), out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(gpu.access_errors(), 0u);
}

TEST(SubCluster, DmaReadFromGpuIsTranslationLimited) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);
  auto& gpu = tca.node(0).gpu(0);

  constexpr std::uint32_t kLen = 256 << 10;
  auto ptr = gpu.mem_alloc(kLen);
  ASSERT_TRUE(ptr.is_ok());
  ASSERT_TRUE(drv.p2p().pin(0, ptr.value(), kLen).is_ok());
  auto data = pattern(kLen, 7);
  gpu.poke(ptr.value(), data);

  // 64 chained 4 KiB reads (steady state dominates the fixed cost).
  std::vector<DmaDescriptor> chain;
  for (std::uint32_t i = 0; i < 64; ++i) {
    chain.push_back({.src = drv.gpu_global(0, ptr.value() + i * 4096),
                     .dst = drv.internal_global(i * 4096),
                     .length = 4096,
                     .direction = DmaDirection::kRead});
  }
  auto t = drv.run_chain(std::move(chain));
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(kLen);
  tca.chip(0).internal_ram().read(0, out);
  EXPECT_EQ(out, data);

  const double rate = units::bytes_per_second(kLen, t.result());
  EXPECT_LT(rate, 900e6);  // the paper's 830 MB/s GPU-read ceiling
  EXPECT_GT(rate, 600e6);
}

TEST(SubCluster, RemoteDmaWriteToHostDeliversAndAcks) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);

  auto data = pattern(4096, 8);
  tca.chip(0).internal_ram().write(0, data);

  auto t = drv.run_chain({DmaDescriptor{.src = drv.internal_global(0),
                                        .dst = tca.global_host(1, 0x2000),
                                        .length = 4096,
                                        .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(4096);
  tca.node(1).cpu().read_host(0x2000, out);
  EXPECT_EQ(out, data);
  // The delivery notification came home.
  EXPECT_EQ(tca.chip(0).mailbox_count(), 1u);
  EXPECT_EQ(tca.chip(1).acks_sent(), 1u);
}

TEST(SubCluster, RemoteDmaWriteToGpuGetsDeliveryAck) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);
  auto& gpu = tca.node(1).gpu(0);

  auto ptr = gpu.mem_alloc(64 << 10);
  ASSERT_TRUE(ptr.is_ok());
  ASSERT_TRUE(tca.driver(1).p2p().pin(0, ptr.value(), 64 << 10).is_ok());

  auto data = pattern(4096, 9);
  tca.chip(0).internal_ram().write(0, data);

  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = tca.global_gpu(1, 0, ptr.value()),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(4096);
  gpu.peek(ptr.value(), out);
  EXPECT_EQ(out, data);
  // Remote GPU destinations get the same end-to-end PEARL notification as
  // host destinations: without it a "reliable" put into a GPU staging
  // buffer would complete at source-egress drain with no evidence the
  // bytes ever landed (stale data under faults). The destination chip
  // sends the ack when the GDDR write actually commits.
  EXPECT_EQ(tca.chip(0).mailbox_count(), 1u);
  EXPECT_EQ(tca.chip(1).acks_sent(), 1u);
}

TEST(SubCluster, RemoteReadRejectedPutOnly) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);

  auto t = drv.run_chain(
      {DmaDescriptor{.src = tca.global_host(1, 0),  // remote source!
                     .dst = drv.internal_global(0),
                     .length = 4096,
                     .direction = DmaDirection::kRead}});
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_GT(tca.chip(0).dmac().errors(), 0u);
  EXPECT_NE(tca.chip(0).read_register(peach2::regs::kDmaStatus) & 4, 0u);
}

TEST(SubCluster, PipelinedDescriptorMovesHostToRemoteHost) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);

  auto data = pattern(16 << 10, 10);
  tca.node(0).cpu().write_host(0x1000, data);

  auto t = drv.run_chain(
      {DmaDescriptor{.src = drv.host_buffer_global(0x1000),
                     .dst = tca.global_host(1, 0x3000),
                     .length = 16 << 10,
                     .direction = DmaDirection::kPipelined}});
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(16 << 10);
  tca.node(1).cpu().read_host(0x3000, out);
  EXPECT_EQ(out, data);
}

constexpr std::uint32_t kTwoPhaseLen = 64 << 10;

sim::Task<TimePs> run_two_phase(SubCluster& tca) {
  Peach2Driver& drv = tca.driver(0);
  const TimePs t0 = tca.node(0).cpu().scheduler().now();
  // Note: vectors are built as locals — GCC rejects initializer-list
  // temporaries spanning a co_await.
  std::vector<DmaDescriptor> phase1{
      DmaDescriptor{.src = drv.host_buffer_global(0x1000),
                    .dst = drv.internal_global(0),
                    .length = kTwoPhaseLen,
                    .direction = DmaDirection::kRead}};
  co_await drv.run_chain(std::move(phase1));
  std::vector<DmaDescriptor> phase2{
      DmaDescriptor{.src = drv.internal_global(0),
                    .dst = tca.global_host(1, 0x3000),
                    .length = kTwoPhaseLen,
                    .direction = DmaDirection::kWrite}};
  co_await drv.run_chain(std::move(phase2));
  co_return tca.node(0).cpu().scheduler().now() - t0;
}

TEST(SubCluster, PipelinedBeatsTwoPhase) {
  // The Section IV-B2 motivation: the redesigned DMAC avoids the two-phase
  // staging through internal memory.
  constexpr std::uint32_t kLen = kTwoPhaseLen;
  const auto data = pattern(kLen, 11);

  TimePs two_phase = 0, pipelined = 0;
  {
    sim::Scheduler sched;
    SubCluster tca(sched, small_cluster(2));
    tca.node(0).cpu().write_host(0x1000, data);
    auto t = run_two_phase(tca);
    sched.run();
    two_phase = t.result();
    std::vector<std::byte> out(kLen);
    tca.node(1).cpu().read_host(0x3000, out);
    EXPECT_EQ(out, data);
  }
  {
    sim::Scheduler sched;
    SubCluster tca(sched, small_cluster(2));
    tca.node(0).cpu().write_host(0x1000, data);
    auto t = tca.driver(0).run_chain(
        {DmaDescriptor{.src = tca.driver(0).host_buffer_global(0x1000),
                       .dst = tca.global_host(1, 0x3000),
                       .length = kLen,
                       .direction = DmaDirection::kPipelined}});
    sched.run();
    pipelined = t.result();
    std::vector<std::byte> out(kLen);
    tca.node(1).cpu().read_host(0x3000, out);
    EXPECT_EQ(out, data);
  }
  EXPECT_LT(pipelined, two_phase);
  EXPECT_LT(pipelined, two_phase * 3 / 4);  // substantial, not marginal
}

TEST(SubCluster, MultiHopLatencyGrowsWithDistance) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(8));

  auto measure = [&](std::uint32_t dest) {
    std::uint32_t zero = 0;
    tca.node(dest).cpu().write_host(0x100, std::as_bytes(std::span(&zero, 1)));
    auto poll = tca.node(dest).cpu().poll_host_until_change(0x100, 0);
    const TimePs t0 = sched.now();
    auto store =
        tca.driver(0).pio_store_u32(tca.global_host(dest, 0x100), 7);
    sched.run();
    return poll.result() - t0;
  };

  const TimePs one_hop = measure(1);
  const TimePs two_hops = measure(2);
  const TimePs four_hops = measure(4);
  EXPECT_GT(two_hops, one_hop);
  EXPECT_GT(four_hops, two_hops);
  // Each extra hop adds roughly route latency + cable time.
  EXPECT_NEAR(static_cast<double>(two_hops - one_hop),
              static_cast<double>(calib::kRouteLatencyPs +
                                  calib::kCableLatencyPs),
              static_cast<double>(ns(80)));
}

TEST(SubCluster, RingRoutesChooseShortestDirection) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(8));
  // From node 0: node 1..3 go East, node 5..7 go West (4 = tie, East).
  auto& routing = tca.chip(0).routing();
  auto port_for = [&](std::uint32_t dest) {
    return routing.lookup(tca.layout().slice_base(dest));
  };
  EXPECT_EQ(port_for(1), peach2::PortId::kEast);
  EXPECT_EQ(port_for(3), peach2::PortId::kEast);
  EXPECT_EQ(port_for(4), peach2::PortId::kEast);  // tie-break East
  EXPECT_EQ(port_for(5), peach2::PortId::kWest);
  EXPECT_EQ(port_for(7), peach2::PortId::kWest);
}

TEST(SubCluster, DualRingCrossesSouth) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(8, Topology::kDualRing));
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(tca.chip(i).link_up(peach2::PortId::kSouth));
  }
  // Node 0's route to its pair (node 4) goes South.
  EXPECT_EQ(tca.chip(0).routing().lookup(tca.layout().slice_base(4)),
            peach2::PortId::kSouth);

  // Data still arrives across rings.
  auto data = pattern(4, 12);
  auto t = tca.driver(0).pio_store(tca.global_host(5, 0x80), data);
  sched.run();
  std::vector<std::byte> out(4);
  tca.node(5).cpu().read_host(0x80, out);
  EXPECT_EQ(out, data);
}

TEST(SubCluster, RegisterPathReadsChipId) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  auto t = tca.driver(0).read_register(peach2::regs::kChipId);
  sched.run();
  EXPECT_EQ(t.result(), peach2::regs::kChipIdValue);

  auto v = tca.driver(1).read_register(peach2::regs::kNodeId);
  sched.run();
  EXPECT_EQ(v.result(), 1u);
}

TEST(SubCluster, RegisterPathProgramsRoutingEntry) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  namespace r = peach2::regs;
  auto& drv = tca.driver(0);
  const std::uint64_t base = r::kRouteBase + 10 * r::kRouteStride;

  // Named closure: it must outlive the coroutine suspended on MMIO.
  auto prog_fn = [&]() -> sim::Task<> {
    co_await drv.write_register(base + r::kRouteMask, ~0xffull);
    co_await drv.write_register(base + r::kRouteLower, 0xabc00);
    co_await drv.write_register(base + r::kRouteUpper, 0xabc00);
    co_await drv.write_register(base + r::kRoutePort,
                                static_cast<std::uint64_t>(
                                    peach2::PortId::kSouth));
  };
  auto prog = prog_fn();
  sched.run();
  ASSERT_TRUE(prog.done());

  const auto& e = tca.chip(0).routing().entry(10);
  EXPECT_EQ(e.mask, ~0xffull);
  EXPECT_EQ(e.lower, 0xabc00u);
  EXPECT_EQ(e.port, peach2::PortId::kSouth);
}

TEST(SubCluster, ChainedWritesHit33GBs) {
  // The Figure 7 headline: 255 chained 4 KiB DMA writes -> 3.3 GB/s.
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(2));
  Peach2Driver& drv = tca.driver(0);

  std::vector<DmaDescriptor> chain;
  for (std::uint32_t i = 0; i < 255; ++i) {
    chain.push_back({.src = drv.internal_global((i * 4096) % (1 << 20)),
                     .dst = drv.host_buffer_global(0x1000),
                     .length = 4096,
                     .direction = DmaDirection::kWrite});
  }
  auto t = drv.run_chain(std::move(chain));
  sched.run();
  ASSERT_TRUE(t.done());

  const double gbps = gbytes_per_second(255 * 4096, t.result());
  EXPECT_NEAR(gbps, 3.3, 0.15);
}

}  // namespace
}  // namespace tca::fabric
