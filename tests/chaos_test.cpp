// tca::chaos unit + campaign tests.
//
// Covers the campaign grammar (round-trip, rejection), the seeded plan
// generator (parse/to_string round-trip property, topology validation),
// same-seed determinism of full campaigns, the ddmin shrinker, small
// invariant sweeps across every workload, and replay of the committed
// regression corpus in tests/chaos/. The long seed-rotating sweeps live
// under Soak.* (ctest label `soak`, excluded from tier-1 runs).
#include "chaos/chaos.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fabric/fault_plan.h"
#include "fabric/topology.h"

namespace tca::chaos {
namespace {

using fabric::FaultPlan;
using fabric::TopologySpec;

// --- Grammar ----------------------------------------------------------------

TEST(ChaosSpec, TopologyTokenRoundTrip) {
  for (const char* token :
       {"ring:8", "ring:4", "dual-ring:8", "torus:4x4", "torus:2x2x2"}) {
    auto topo = parse_topology(token);
    ASSERT_TRUE(topo.is_ok()) << topo.status().to_string();
    EXPECT_EQ(topology_to_string(topo.value()), token);
  }
}

TEST(ChaosSpec, TopologyTokenRejectsJunk) {
  EXPECT_FALSE(parse_topology("ring").is_ok());  // count is mandatory here
  EXPECT_FALSE(parse_topology("ring:").is_ok());
  EXPECT_FALSE(parse_topology("ring:4x4").is_ok());
  EXPECT_FALSE(parse_topology("mesh:4").is_ok());
}

TEST(ChaosSpec, CampaignRoundTrip) {
  CampaignSpec spec;
  spec.seed = 987654321;
  spec.topology = TopologySpec::torus({4, 4});
  spec.workload = Workload::kHalo;
  spec.plan.cut(3, units::us(5)).flap(17, units::us(10), units::us(40));

  auto parsed = CampaignSpec::parse(spec.to_string());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().seed, spec.seed);
  EXPECT_EQ(parsed.value().topology, spec.topology);
  EXPECT_EQ(parsed.value().workload, spec.workload);
  EXPECT_EQ(parsed.value().plan.to_string(), spec.plan.to_string());
  EXPECT_EQ(parsed.value().to_string(), spec.to_string());
}

TEST(ChaosSpec, CampaignParseRejectsUnknownAndDuplicateKeys) {
  EXPECT_FALSE(CampaignSpec::parse("seed=1\nbogus=2\n").is_ok());
  EXPECT_FALSE(CampaignSpec::parse("seed=1\nseed=2\n").is_ok());
  EXPECT_FALSE(CampaignSpec::parse("seed=abc\n").is_ok());
  EXPECT_FALSE(CampaignSpec::parse("workload=sorting\n").is_ok());
}

TEST(ChaosSpec, CampaignParseSkipsCommentsAndBlanks) {
  auto parsed = CampaignSpec::parse(
      "# a reproducer\n\n  seed=7\ntopology=ring:4\n\nworkload=pingpong\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().seed, 7u);
  EXPECT_EQ(parsed.value().workload, Workload::kPingPong);
  EXPECT_TRUE(parsed.value().plan.empty());
}

// --- Generator property ------------------------------------------------------

TEST(ChaosGenerator, PlansRoundTripAndValidate) {
  const TopologySpec topos[] = {TopologySpec::ring(8),
                                TopologySpec::dual_ring(8),
                                TopologySpec::torus({4, 4}),
                                TopologySpec::torus({2, 2, 2})};
  for (const TopologySpec& topo : topos) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      const FaultPlan plan = generate_fault_plan(seed, topo);
      ASSERT_FALSE(plan.empty());
      // Every generated plan passes validation against its own topology...
      const Status st = plan.validate(topo);
      EXPECT_TRUE(st.is_ok()) << st.to_string();
      // ...and round-trips through the parse grammar exactly.
      auto reparsed = FaultPlan::parse(plan.to_string());
      ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
      EXPECT_EQ(reparsed.value().to_string(), plan.to_string())
          << "seed " << seed;
    }
  }
}

TEST(ChaosGenerator, SameSeedSamePlan) {
  const TopologySpec topo = TopologySpec::torus({4, 4});
  EXPECT_EQ(generate_fault_plan(11, topo).to_string(),
            generate_fault_plan(11, topo).to_string());
  EXPECT_NE(generate_fault_plan(11, topo).to_string(),
            generate_fault_plan(12, topo).to_string());
}

// --- Campaign determinism + invariants ---------------------------------------

TEST(ChaosCampaign, SameSeedReplayIsByteIdentical) {
  CampaignSpec spec;
  spec.seed = 5;
  spec.topology = TopologySpec::torus({4, 4});
  spec.workload = Workload::kMixed;

  const CampaignResult a = run_campaign(spec);
  const CampaignResult b = run_campaign(spec);
  EXPECT_TRUE(a.passed()) << (a.violations.empty() ? "" : a.violations[0]);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.metrics_hash, b.metrics_hash);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.failovers, b.failovers);
}

TEST(ChaosCampaign, EveryWorkloadPassesOnSmallFabrics) {
  for (const Workload w : {Workload::kAllreduce, Workload::kHalo,
                           Workload::kPingPong, Workload::kMixed}) {
    for (std::uint64_t seed : {1, 2, 3}) {
      CampaignSpec spec;
      spec.seed = seed;
      spec.topology = TopologySpec::ring(4);
      spec.workload = w;
      const CampaignResult r = run_campaign(spec);
      EXPECT_TRUE(r.passed())
          << to_string(w) << " seed " << seed << ": "
          << (r.violations.empty() ? "" : r.violations[0]);
      EXPECT_GT(r.ops_ok + r.ops_failed, 0u);
    }
  }
}

TEST(ChaosCampaign, InvalidPlanIsAViolationNotACrash) {
  CampaignSpec spec;
  spec.topology = TopologySpec::ring(4);
  spec.plan.cut(999, units::us(1));  // a 4-node ring has 4 cables
  const CampaignResult r = run_campaign(spec);
  ASSERT_FALSE(r.passed());
  EXPECT_NE(r.violations[0].find("cable"), std::string::npos)
      << r.violations[0];
}

// --- Shrinker ----------------------------------------------------------------

TEST(ChaosShrink, ReducesToTheSingleFailingEvent) {
  // Four valid events plus one out-of-range cable: the campaign fails on
  // plan validation, deterministically, and only the bad event matters.
  CampaignSpec spec;
  spec.topology = TopologySpec::ring(4);
  spec.workload = Workload::kPingPong;
  spec.plan.flap(0, units::us(5), units::us(20))
      .ber_burst(1, units::us(1), units::us(30), 1e-6)
      .cut(999, units::us(2))
      .flap(2, units::us(40), units::us(10))
      .stuck_doorbell(1, 0, units::us(3), units::us(15));

  const ShrinkOutcome out = shrink_campaign(spec);
  EXPECT_TRUE(out.reproduced);
  EXPECT_EQ(out.original_events, 5u);
  ASSERT_EQ(out.minimized_events, 1u);
  EXPECT_EQ(out.minimized.plan.events[0].cable, 999u);
  // The minimized spec still fails, and its rendering reproduces it.
  auto reparsed = CampaignSpec::parse(out.minimized.to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_FALSE(run_campaign(reparsed.value()).passed());
}

TEST(ChaosShrink, PassingCampaignReportsNotReproduced) {
  CampaignSpec spec;
  spec.topology = TopologySpec::ring(4);
  spec.plan.flap(0, units::us(5), units::us(20));
  const ShrinkOutcome out = shrink_campaign(spec);
  EXPECT_FALSE(out.reproduced);
  EXPECT_EQ(out.runs, 1u);
}

// --- Regression corpus -------------------------------------------------------

TEST(ChaosCorpus, CommittedCampaignsReplayGreen) {
  const std::filesystem::path dir = TCA_CHAOS_CORPUS;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".campaign") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no .campaign files under " << dir;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto spec = CampaignSpec::parse(buffer.str());
    ASSERT_TRUE(spec.is_ok())
        << path << ": " << spec.status().to_string();
    const CampaignResult r = run_campaign(spec.value());
    EXPECT_TRUE(r.passed())
        << path << ": " << (r.violations.empty() ? "" : r.violations[0]);
  }
}

// --- Soak --------------------------------------------------------------------

TEST(Soak, ChaosSweepRotatingSeeds) {
  const TopologySpec topos[] = {TopologySpec::ring(8),
                                TopologySpec::torus({4, 4}),
                                TopologySpec::torus({2, 2, 2})};
  const Workload workloads[] = {Workload::kAllreduce, Workload::kHalo,
                                Workload::kPingPong, Workload::kMixed};
  for (std::uint64_t seed = 100; seed < 160; ++seed) {
    CampaignSpec spec;
    spec.seed = seed * 0x9e3779b97f4a7c15ull;
    spec.topology = topos[seed % std::size(topos)];
    spec.workload = workloads[seed % std::size(workloads)];
    const CampaignResult r = run_campaign(spec);
    EXPECT_TRUE(r.passed())
        << "seed " << spec.seed << " on "
        << topology_to_string(spec.topology) << "/"
        << to_string(spec.workload) << ": "
        << (r.violations.empty() ? "" : r.violations[0]);
  }
}

}  // namespace
}  // namespace tca::chaos
