// Tests for the trace subsystem: zero-cost when disabled, event capture
// when enabled, and chrome://tracing JSON structure.
#include <gtest/gtest.h>

#include "common/trace.h"
#include "fabric/sub_cluster.h"

namespace tca {
namespace {

using fabric::SubCluster;
using fabric::SubClusterConfig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

/// The recorder is process-global; each test starts from a clean slate.
struct TraceGuard {
  TraceGuard() {
    Trace::instance().clear();
    Trace::instance().enable();
  }
  ~TraceGuard() {
    Trace::instance().disable();
    Trace::instance().clear();
  }
};

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Trace::instance().clear();
  ASSERT_FALSE(Trace::instance().enabled());
  Trace::instance().duration("t", "x", 0, 100);
  Trace::instance().instant("t", "y", 50);
  EXPECT_EQ(Trace::instance().event_count(), 0u);
}

TEST(Trace, RecordsAllEventKinds) {
  TraceGuard guard;
  Trace::instance().duration("track-a", "span", units::ns(10),
                             units::ns(20));
  Trace::instance().instant("track-a", "tick", units::ns(15));
  Trace::instance().counter("track-b", "queue", units::ns(15), 3.0);
  EXPECT_EQ(Trace::instance().event_count(), 3u);

  const std::string json = Trace::instance().to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("track-a"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Trace, EscapesQuotesInNames) {
  TraceGuard guard;
  Trace::instance().instant("t", "say \"hi\"", 0);
  const std::string json = Trace::instance().to_json();
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

TEST(Trace, DmaChainProducesSpans) {
  TraceGuard guard;
  sim::Scheduler sched;
  SubCluster tca(sched, SubClusterConfig{
                            .spec = fabric::TopologySpec::ring(2),
                            .node_config = {.gpu_count = 2,
                                            .host_backing_bytes = 8 << 20,
                                            .gpu_backing_bytes = 4 << 20}});
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  sched.run();

  EXPECT_GT(Trace::instance().event_count(), 10u);  // TLPs + spans
  const std::string json = Trace::instance().to_json();
  EXPECT_NE(json.find("dmac/node0"), std::string::npos);
  EXPECT_NE(json.find("driver/node0"), std::string::npos);
  EXPECT_NE(json.find("cable/0-1"), std::string::npos);
  EXPECT_NE(json.find("slot0/node0"), std::string::npos);
  EXPECT_NE(json.find("interrupt"), std::string::npos);
}

TEST(Trace, WriteJsonRoundTrips) {
  TraceGuard guard;
  Trace::instance().duration("t", "x", 0, units::ns(5));
  const std::string path = ::testing::TempDir() + "/tcasim_trace.json";
  ASSERT_TRUE(Trace::instance().write_json(path).is_ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  const std::size_t n = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  content.resize(n);
  EXPECT_EQ(content, Trace::instance().to_json());
}

TEST(Trace, TracingDoesNotPerturbTiming) {
  auto measure = [](bool traced) {
    Trace::instance().clear();
    if (traced) {
      Trace::instance().enable();
    } else {
      Trace::instance().disable();
    }
    sim::Scheduler sched;
    SubCluster tca(sched, SubClusterConfig{
                              .spec = fabric::TopologySpec::ring(2),
                              .node_config = {.gpu_count = 2,
                                              .host_backing_bytes = 8 << 20,
                                              .gpu_backing_bytes = 4 << 20}});
    auto t = tca.driver(0).run_chain(
        {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                       .dst = tca.global_host(1, 0),
                       .length = 16384,
                       .direction = DmaDirection::kWrite}});
    sched.run();
    Trace::instance().disable();
    Trace::instance().clear();
    return t.result();
  };
  EXPECT_EQ(measure(false), measure(true));
}

}  // namespace
}  // namespace tca
