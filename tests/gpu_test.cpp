// Unit tests for the GPU device model: allocation, the GPUDirect token/pin
// dance, BAR translation rules, write sinking, serialized read service, and
// copy-engine timing.
#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "common/rng.h"
#include "gpu/gpu_device.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::gpu {
namespace {

using units::gbytes_per_second;
using units::ns;
using units::us;

constexpr std::uint64_t kBar = 0x20'0000'0000ull;

GpuConfig test_config() {
  return GpuConfig{.memory_bytes = 8 << 20, .bar1_base = kBar};
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 31 + i) & 0xff);
  }
  return v;
}

TEST(GpuDevice, MemAllocAligned) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 1, test_config());
  auto a = gpu.mem_alloc(100);
  ASSERT_TRUE(a.is_ok());
  auto b = gpu.mem_alloc(100);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value() % 256, 0u);
  EXPECT_EQ(b.value() % 256, 0u);
  EXPECT_GE(b.value(), a.value() + 100);
}

TEST(GpuDevice, MemAllocExhaustion) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 1, test_config());
  EXPECT_FALSE(gpu.mem_alloc(0).is_ok());
  EXPECT_TRUE(gpu.mem_alloc(4 << 20).is_ok());
  EXPECT_FALSE(gpu.mem_alloc(5 << 20).is_ok());  // over capacity now
}

TEST(GpuDevice, TokenPinUnpinFlow) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 3, test_config());
  auto ptr = gpu.mem_alloc(128 << 10);
  ASSERT_TRUE(ptr.is_ok());

  auto token = gpu.get_p2p_token(ptr.value());
  ASSERT_TRUE(token.is_ok());

  auto bus = gpu.pin_pages(token.value(), ptr.value(), 128 << 10);
  ASSERT_TRUE(bus.is_ok());
  EXPECT_EQ(bus.value(), kBar + ptr.value());
  EXPECT_TRUE(gpu.is_pinned(ptr.value(), 128 << 10));

  ASSERT_TRUE(gpu.unpin_pages(ptr.value(), 128 << 10).is_ok());
  EXPECT_FALSE(gpu.is_pinned(ptr.value(), 1));
}

TEST(GpuDevice, PinRejectsForgedToken) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 3, test_config());
  P2pToken forged{.p2p_token = 0x1234, .va_space_token = 99};
  EXPECT_FALSE(gpu.pin_pages(forged, 0, 4096).is_ok());
}

TEST(GpuDevice, PinGranularityIsPageWise) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 3, test_config());
  auto token = gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  // Pin one byte: the whole surrounding page becomes accessible.
  ASSERT_TRUE(gpu.pin_pages(token.value(), 10, 1).is_ok());
  EXPECT_TRUE(gpu.is_pinned(0, calib::kGpuPinPageBytes));
  EXPECT_FALSE(gpu.is_pinned(calib::kGpuPinPageBytes, 1));
}

TEST(GpuDevice, TokenOutOfRangeRejected) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 3, test_config());
  EXPECT_FALSE(gpu.get_p2p_token(1ull << 40).is_ok());
}

/// Harness: a link whose host side we drive manually.
struct GpuOnLink {
  explicit GpuOnLink(sim::Scheduler& sched)
      : link(sched, {.gen = 2, .lanes = 8}), gpu(sched, 9, test_config()) {
    gpu.attach(link.end_b());
  }
  pcie::PcieLink link;
  GpuDevice gpu;
};

class HostSink : public pcie::TlpSink {
 public:
  void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override {
    port.release_rx(tlp.wire_bytes());
    received.push_back(std::move(tlp));
  }
  std::vector<pcie::Tlp> received;
};

TEST(GpuDevice, BarWriteLandsInPinnedMemory) {
  sim::Scheduler sched;
  GpuOnLink rig(sched);
  HostSink host;
  rig.link.end_a().set_sink(&host);

  auto token = rig.gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  ASSERT_TRUE(rig.gpu.pin_pages(token.value(), 0, 64 << 10).is_ok());

  auto data = pattern(256);
  rig.link.end_a().send(pcie::Tlp::mem_write(kBar + 0x100, data));
  sched.run();

  std::vector<std::byte> out(256);
  rig.gpu.peek(0x100, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(rig.gpu.access_errors(), 0u);
}

TEST(GpuDevice, UnpinnedWriteDroppedAndCounted) {
  sim::Scheduler sched;
  GpuOnLink rig(sched);
  HostSink host;
  rig.link.end_a().set_sink(&host);

  auto data = pattern(64);
  rig.link.end_a().send(pcie::Tlp::mem_write(kBar + 0x100, data));
  sched.run();

  EXPECT_EQ(rig.gpu.access_errors(), 1u);
  std::vector<std::byte> out(64);
  rig.gpu.peek(0x100, out);
  EXPECT_NE(out, data);
}

TEST(GpuDevice, BarReadReturnsCompletionsWithData) {
  sim::Scheduler sched;
  GpuOnLink rig(sched);
  HostSink host;
  rig.link.end_a().set_sink(&host);

  auto token = rig.gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  ASSERT_TRUE(rig.gpu.pin_pages(token.value(), 0, 64 << 10).is_ok());
  auto data = pattern(512, 3);
  rig.gpu.poke(0x400, data);

  rig.link.end_a().send(pcie::Tlp::mem_read(kBar + 0x400, 512, /*req=*/1, 5));
  sched.run();

  // 512 B in 256 B completion chunks.
  ASSERT_EQ(host.received.size(), 2u);
  std::vector<std::byte> got;
  for (const auto& cpl : host.received) {
    EXPECT_EQ(cpl.type, pcie::TlpType::kCompletion);
    EXPECT_EQ(cpl.tag, 5);
    got.insert(got.end(), cpl.payload.begin(), cpl.payload.end());
  }
  EXPECT_EQ(got, data);
}

TEST(GpuDevice, ReadServiceRateCapsAt830MBs) {
  // The paper: "the maximum DMA read performance is only 830 Mbytes/sec".
  // Saturate the read pipe and check the completion rate.
  sim::Scheduler sched;
  GpuOnLink rig(sched);
  HostSink host;
  rig.link.end_a().set_sink(&host);

  auto token = rig.gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  constexpr std::uint64_t kTotal = 1 << 20;
  ASSERT_TRUE(rig.gpu.pin_pages(token.value(), 0, kTotal).is_ok());

  std::uint64_t issued = 0;
  std::function<void()> pump = [&] {
    while (issued < kTotal) {
      pcie::Tlp req = pcie::Tlp::mem_read(
          kBar + issued, 512, 1, static_cast<std::uint8_t>(issued / 512));
      if (!rig.link.end_a().can_send(req)) return;
      rig.link.end_a().send(std::move(req));
      issued += 512;
    }
  };
  rig.link.end_a().set_tx_ready(pump);
  pump();
  sched.run();

  std::uint64_t bytes = 0;
  for (const auto& cpl : host.received) bytes += cpl.payload.size();
  EXPECT_EQ(bytes, kTotal);
  const double rate = units::bytes_per_second(bytes, sched.now());
  EXPECT_NEAR(rate / 1e6, 830.0, 25.0);
}

TEST(GpuDevice, MemcpyTimingHasOverheadPlusRate) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 1, test_config());
  auto data = pattern(1 << 20);

  sim::Task<> t = gpu.memcpy_h2d(data, 0);
  sched.run();
  ASSERT_TRUE(t.done());

  const double expected_s = units::to_s(calib::kCudaMemcpyOverheadPs) +
                            static_cast<double>(data.size()) /
                                calib::kCudaMemcpyBytesPerSec;
  EXPECT_NEAR(units::to_s(sched.now()), expected_s, 1e-9);

  std::vector<std::byte> out(data.size());
  gpu.peek(0, out);
  EXPECT_EQ(out, data);
}

TEST(GpuDevice, MemcpyD2HRoundTrip) {
  sim::Scheduler sched;
  GpuDevice gpu(sched, 1, test_config());
  auto data = pattern(4096, 9);
  gpu.poke(100, data);

  std::vector<std::byte> out(4096);
  sim::Task<> t = gpu.memcpy_d2h(100, out);
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace tca::gpu
