// Seeded violation: det-wall-clock — simulation logic reading the host
// clock. Replay must be bit-identical across machines and runs, so all
// timing flows through Scheduler::now() (simulated picoseconds).
#include <chrono>

namespace fixture {

long stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace fixture
