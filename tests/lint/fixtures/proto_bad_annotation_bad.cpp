// Seeded violation: proto-bad-annotation, twice — a typoed clause name and
// a statement annotation whose statement was deleted out from under it.
namespace fix {

struct Pool {
  // tca-protocol: aquires(tag)
  int claim();
};

int strand(Pool& pool) {
  // tca-protocol: release(tag)

  return pool.claim();
}

}  // namespace fix
