// Clean twin of proto_leak_bad.cpp: every path discharges the tag, either
// by releasing it or by transferring ownership to the completion table.
#include <cstdint>

namespace fix {

struct TagPool {
  // tca-protocol: acquires(tag)
  std::uint8_t acquire_tag();
  // tca-protocol: releases(tag)
  void release_tag(std::uint8_t tag);
  void park(std::uint8_t tag);
  bool aborted = false;
};

void use_one(TagPool& pool) {
  const std::uint8_t tag = pool.acquire_tag();
  if (pool.aborted) {
    pool.release_tag(tag);
    return;
  }
  pool.release_tag(tag);
}

void hand_off(TagPool& pool) {
  const std::uint8_t tag = pool.acquire_tag();
  pool.park(tag);  // tca-protocol: transfer(tag)
}

void acquire_in_loop(TagPool& pool, int n) {
  for (int i = 0; i < n; ++i) {
    const std::uint8_t tag = pool.acquire_tag();
    pool.release_tag(tag);
  }
}

}  // namespace fix
