// Clean twin of det_wall_clock_bad.cpp: timing comes from the scheduler's
// simulated clock. Mentions of steady_clock in comments or strings (like
// this one, or "steady_clock" below) must not trigger the rule.
#include "sim/scheduler.h"

namespace fixture {

long stamp(sim::Scheduler& sched) {
  const char* label = "steady_clock is banned";
  (void)label;
  return static_cast<long>(sched.now());
}

}  // namespace fixture
