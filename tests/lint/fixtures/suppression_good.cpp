// A justified, well-formed suppression: the finding on the next line is
// waived and the file lints clean.
#include <chrono>

namespace fixture {

long stamp() {
  // tca-lint: allow(det-wall-clock): fixture demonstrates a justified waiver
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace fixture
