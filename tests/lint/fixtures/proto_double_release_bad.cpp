// Seeded violation: proto-double-release. The error path releases the tag
// and then falls through to the common release.
#include <cstdint>

namespace fix {

struct TagPool {
  // tca-protocol: acquires(tag)
  std::uint8_t acquire_tag();
  // tca-protocol: releases(tag)
  void release_tag(std::uint8_t tag);
};

void twice(TagPool& pool) {
  const std::uint8_t tag = pool.acquire_tag();
  pool.release_tag(tag);
  pool.release_tag(tag);  // BUG: nothing is held any more
}

}  // namespace fix
