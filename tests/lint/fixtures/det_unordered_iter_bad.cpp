// Seeded violation: det-unordered-iter — range-for over an unordered
// container. Iteration order is implementation-defined, so anything the
// loop feeds (traces, metrics, free lists) diverges across platforms.
#include <unordered_map>

namespace fixture {

struct Tracker {
  std::unordered_map<int, long> bytes_by_tag_;

  long total() const {
    long sum = 0;
    for (const auto& [tag, bytes] : bytes_by_tag_) {
      sum += bytes;
    }
    return sum;
  }
};

}  // namespace fixture
