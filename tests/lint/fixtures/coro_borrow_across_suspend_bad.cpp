// Seeded violation: coro-borrow-across-suspend. The arena frame pointer is
// borrowed before the suspension; by resume time the scheduler may be
// running the coroutine on a different shard whose arena recycled it.
namespace fix {

struct Arena {
  int* alloc(int bytes);
};

// tca-protocol: borrows(arena)
Arena* current_arena();

struct Awaitable {
  bool await_ready();
  void await_suspend(int h);
  void await_resume();
};

struct Task {
  struct promise_type;
};

Task stale(Awaitable delay) {
  Arena* frame = current_arena();
  co_await delay;
  frame->alloc(64);  // BUG: the borrow crossed the suspension
}

}  // namespace fix
