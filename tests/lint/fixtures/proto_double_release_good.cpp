// Clean twin of proto_double_release_bad.cpp: the branchy release pattern
// discharges exactly once on every path.
#include <cstdint>

namespace fix {

struct TagPool {
  // tca-protocol: acquires(tag)
  std::uint8_t acquire_tag();
  // tca-protocol: releases(tag)
  void release_tag(std::uint8_t tag);
  bool fast_path = false;
};

void once(TagPool& pool) {
  const std::uint8_t tag = pool.acquire_tag();
  if (pool.fast_path) {
    pool.release_tag(tag);
    return;
  }
  pool.release_tag(tag);
}

}  // namespace fix
