// Clean twin of coll_flag_overlap_bad.cpp: the ack region is based past the
// data region for every parameter value, and both stay under the total.
#include <cstdint>

namespace fix {

constexpr std::uint32_t kDataBase = 0;

// tca-flags: param(n, 1, 8)
// tca-flags: region(data, kDataBase, n), region(ack, kDataBase + n, n)
// tca-flags: total(kDataBase + 2 * n)
inline std::uint32_t data_word(std::uint32_t q) { return kDataBase + q; }
inline std::uint32_t ack_word(std::uint32_t n, std::uint32_t q) {
  return kDataBase + n + q;
}

}  // namespace fix
