// Seeded violation: proto-ack-before-commit. This is the PR 8 chaos-found
// ack-outruns-data-commit bug shape: the PEARL delivery notification fires
// off a latency estimate before the payload actually lands in memory.
#include <cstdint>

namespace fix {

struct Notifier {
  // tca-protocol: acks-on-commit
  void on_write_commit(std::uint64_t ack_address, std::uint8_t tag);
};

struct Dram {
  void write(std::uint64_t offset, int data);
};

// tca-protocol: commit-point, owns(commit-ack)
void deliver(Dram& dram, Notifier* notifier, std::uint64_t offset,
             std::uint64_t ack, std::uint8_t tag) {
  // tca-protocol: release(commit-ack)
  if (notifier != nullptr) notifier->on_write_commit(ack, tag);  // BUG
  dram.write(offset, 1);  // tca-protocol: commit
}

}  // namespace fix
