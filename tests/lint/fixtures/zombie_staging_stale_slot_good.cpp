// Clean twin of zombie_staging_stale_slot_bad.cpp: both destinations
// recycle the staging slot once the copy lands.
namespace fix {

struct StagingRing {
  // tca-protocol: acquires(staging-slot)
  int claim_slot();
  // tca-protocol: releases(staging-slot)
  void recycle_slot(int slot);
  void copy_into(int slot);
};

enum class Dest { kHost, kGpu };

void stage_and_commit(StagingRing& ring, Dest dest) {
  const int slot = ring.claim_slot();
  ring.copy_into(slot);
  if (dest == Dest::kHost) {
    ring.recycle_slot(slot);
  } else {
    ring.recycle_slot(slot);
  }
}

}  // namespace fix
