// Clean twin of det_unordered_iter_bad.cpp: unordered containers are fine
// for keyed lookup; only *iterating* them is order-sensitive. Ordered maps
// may be iterated freely.
#include <map>
#include <unordered_map>

namespace fixture {

struct Tracker {
  std::unordered_map<int, long> lookup_;   // find()/erase() only — fine
  std::map<int, long> bytes_by_tag_;       // ordered: iteration is stable

  long get(int tag) const {
    const auto it = lookup_.find(tag);
    return it == lookup_.end() ? 0 : it->second;
  }

  long total() const {
    long sum = 0;
    for (const auto& [tag, bytes] : bytes_by_tag_) {
      sum += bytes;
    }
    return sum;
  }
};

}  // namespace fixture
