// Seeded violation: det-shard-shared-state — mutable statics on a shard
// execution path. Epoch-mode workers execute event bodies concurrently, so
// unsynchronized shared state is a data race, and the value any event
// observes depends on thread interleaving: replay stops being bit-identical.
#include <cstdint>

namespace fixture {

inline static std::uint64_t g_events_executed = 0;  // namespace-scope static

std::uint64_t next_sequence() {
  static std::uint64_t counter = 0;  // function-local mutable static
  ++g_events_executed;
  return ++counter;
}

}  // namespace fixture
