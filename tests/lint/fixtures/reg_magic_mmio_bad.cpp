// Seeded violations: reg-magic-mmio — MMIO accesses via magic integer
// offsets. Offsets must be named peach2::regs:: constants so the register
// map stays the single source of truth.
#include "peach2/registers.h"

namespace fixture {

void poke(Chip& chip) {
  chip.write_register(0x210, 1);
  const auto status = chip.read_register(0x218);
  (void)status;
  const auto doorbell = tca::peach2::regs::dma_bank(1, 0x10);
  (void)doorbell;
}

}  // namespace fixture
