// Seeded violations: coro-ref-param — coroutine parameters that can bind a
// temporary. A `const T&` or `T&&` parameter of a coroutine refers to the
// caller's argument, which dies at the end of the caller's full-expression;
// the frame then holds a dangling reference across suspension.
#include "sim/task.h"

namespace fixture {

struct Buffer {
  unsigned id = 0;
};

// const lvalue reference: binds temporaries.
sim::Task<> write_flag(const Buffer& flag, unsigned value);

// rvalue reference: always a temporary or an expiring object.
sim::Task<int> consume(Buffer&& scratch);

}  // namespace fixture
