// Clean twin of registers_bad.h: a miniature but fully consistent register
// map — aligned offsets, disjoint ranges, in-window globals, in-stride bank
// fields, a correct channel-0 alias, and a kRegMap table that matches the
// annotated constants exactly.
#pragma once

#include <cstdint>

namespace fixture::regs {

inline constexpr std::uint64_t kWindowBytes = 64 << 10;
inline constexpr std::uint64_t kDmaBankBase = 0x200;
inline constexpr std::uint64_t kDmaBankStride = 0x80;
inline constexpr std::uint64_t kDmaChannelBanks = 4;
inline constexpr std::uint64_t kRouteBase = 0x400;
inline constexpr std::uint64_t kRouteStride = 0x20;
inline constexpr std::uint64_t kRouteEntries = 64;

inline constexpr std::uint64_t kChipId = 0x000;           // RO
inline constexpr std::uint64_t kNodeId = 0x008;           // RW
inline constexpr std::uint64_t kDmaBankDoorbell = 0x10;   // WO bank:dma
inline constexpr std::uint64_t kDmaDoorbell =  // alias
    kDmaBankBase + kDmaBankDoorbell;
inline constexpr std::uint64_t kRoutePort = 0x18;         // RW bank:route
inline constexpr std::uint64_t kLinkStatusBase = 0xc00;   // RO span:32

enum class RegAccess : unsigned char { kRO, kRW, kWO };
enum class RegBank : unsigned char { kGlobal, kDmaChannel, kRouteEntry };

struct RegSpec {
  std::uint64_t offset;
  RegAccess access;
  RegBank bank;
  const char* name;
  std::uint64_t span = 8;
};

inline constexpr RegSpec kRegMap[] = {
    {kChipId, RegAccess::kRO, RegBank::kGlobal, "kChipId"},
    {kNodeId, RegAccess::kRW, RegBank::kGlobal, "kNodeId"},
    {kLinkStatusBase, RegAccess::kRO, RegBank::kGlobal, "kLinkStatusBase", 32},
    {kDmaBankDoorbell, RegAccess::kWO, RegBank::kDmaChannel,
     "kDmaBankDoorbell"},
    {kRoutePort, RegAccess::kRW, RegBank::kRouteEntry, "kRoutePort"},
};

}  // namespace fixture::regs
