// Clean twin of coro_temporary_closure_bad.cpp: the repo idiom — a
// capture-less lambda coroutine with state passed as parameters. By-value
// parameters are moved into the frame; the non-const lvalue reference binds
// an object the caller guarantees outlives the coroutine.
#include "sim/task.h"

namespace fixture {

void start_pinger(Node& node, int rounds) {
  sim::spawn([](Node& n, int r) -> sim::Task<> {
    for (int i = 0; i < r; ++i) {
      co_await n.ping();
    }
  }(node, rounds));
}

// A capturing lambda coroutine is fine when the closure is *named* and kept
// alive by the caller for the coroutine's lifetime.
void start_named(Node& node) {
  auto body = [&node]() -> sim::Task<> { co_await node.ping(); };
  node.keep_alive(body);
}

}  // namespace fixture
