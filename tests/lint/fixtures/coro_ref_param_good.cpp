// Clean twin of coro_ref_param_bad.cpp: coroutine parameters by value (the
// frame owns a copy/move) or by non-const lvalue reference (cannot bind a
// temporary). Ordinary functions may of course take const references.
#include "sim/task.h"

namespace fixture {

struct Buffer {
  unsigned id = 0;
};

sim::Task<> write_flag(Buffer flag, unsigned value);

sim::Task<int> consume(Buffer scratch);

// Non-const lvalue references are allowed: they cannot bind temporaries.
sim::Task<> drive(Buffer& engine);

// Not a coroutine — const& is idiomatic here.
unsigned checksum(const Buffer& b);

// A container of tasks is not a coroutine declaration.
struct Pool {
  int count(const Buffer& b) const;
};

}  // namespace fixture
