// Reintroduction fixture for the PR 8 chaos-found zombie-staging-stale-slot
// bug: the commit path recycles the staging slot only for host-destination
// writes, so a GPU-destination write leaves its slot marked busy forever
// and the ring eventually wedges.
namespace fix {

struct StagingRing {
  // tca-protocol: acquires(staging-slot)
  int claim_slot();
  // tca-protocol: releases(staging-slot)
  void recycle_slot(int slot);
  void copy_into(int slot);
};

enum class Dest { kHost, kGpu };

void stage_and_commit(StagingRing& ring, Dest dest) {
  const int slot = ring.claim_slot();
  ring.copy_into(slot);
  if (dest == Dest::kHost) {
    ring.recycle_slot(slot);
  }
  // BUG: the kGpu path exits with the slot still claimed
}

}  // namespace fix
