// Seeded violation: lint-bad-suppression — an allow without the mandatory
// justification. The malformed directive is itself a finding, and the
// underlying det-wall-clock finding is NOT suppressed.
#include <chrono>

namespace fixture {

long stamp() {
  // tca-lint: allow(det-wall-clock)
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace fixture
