// Clean twin of det_raw_rand_bad.cpp: randomness drawn from the seeded,
// cross-platform tca::Rng wrapper (common/rng).
#include "common/rng.h"

namespace fixture {

int noise(tca::Rng& rng) {
  return static_cast<int>(rng.next_u64() & 0x7fffffff);
}

}  // namespace fixture
