// Seeded violation: coro-temporary-closure — the PR 3 ASan bug class.
// The capturing lambda is invoked as a temporary; its closure (holding
// `rounds` and `node`) is destroyed at the end of the full-expression while
// the eagerly-started coroutine frame lives on, so every capture dangles
// from the first suspension point onward.
#include "sim/task.h"

namespace fixture {

void start_pinger(Node& node, int rounds) {
  sim::spawn([&node, rounds]() -> sim::Task<> {
    for (int i = 0; i < rounds; ++i) {
      co_await node.ping();
    }
  }());
}

}  // namespace fixture
