// Clean twin of coro_borrow_across_suspend_bad.cpp: the borrow is used
// before the suspension and re-borrowed fresh after resuming.
namespace fix {

struct Arena {
  int* alloc(int bytes);
};

// tca-protocol: borrows(arena)
Arena* current_arena();

struct Awaitable {
  bool await_ready();
  void await_suspend(int h);
  void await_resume();
};

struct Task {
  struct promise_type;
};

Task fresh(Awaitable delay) {
  Arena* frame = current_arena();
  frame->alloc(64);
  co_await delay;
  frame = current_arena();  // re-borrow after resume
  frame->alloc(64);
}

}  // namespace fix
