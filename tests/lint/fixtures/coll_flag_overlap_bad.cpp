// Seeded violation: coll-flag-overlap. The ack region starts inside the
// data region once the world size exceeds the gap between the bases.
#include <cstdint>

namespace fix {

constexpr std::uint32_t kDataBase = 0;
constexpr std::uint32_t kAckBase = 4;

// tca-flags: param(n, 1, 8)
// tca-flags: region(data, kDataBase, n), region(ack, kAckBase, n)
// tca-flags: total(kAckBase + 2 * n)
inline std::uint32_t data_word(std::uint32_t q) { return kDataBase + q; }
inline std::uint32_t ack_word(std::uint32_t q) { return kAckBase + q; }

}  // namespace fix
