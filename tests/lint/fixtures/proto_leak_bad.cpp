// Seeded violation: proto-leak. The abort path returns while still holding
// the acquired tag — one of the lifecycles the PR 8 chaos fuzzer could only
// find dynamically.
#include <cstdint>

namespace fix {

struct TagPool {
  // tca-protocol: acquires(tag)
  std::uint8_t acquire_tag();
  // tca-protocol: releases(tag)
  void release_tag(std::uint8_t tag);
  bool aborted = false;
};

void use_one(TagPool& pool) {
  const std::uint8_t tag = pool.acquire_tag();
  if (pool.aborted) {
    return;  // BUG: still holding `tag`
  }
  pool.release_tag(tag);
}

}  // namespace fix
