// Seeded violations: det-raw-rand — randomness outside the seeded
// tca::Rng. Standard engines differ across library implementations and
// random_device is nondeterministic by design.
#include <cstdlib>
#include <random>

namespace fixture {

int noise() {
  std::mt19937 gen(42);
  return static_cast<int>(gen()) + rand();
}

}  // namespace fixture
