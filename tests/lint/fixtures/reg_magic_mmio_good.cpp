// Clean twin of reg_magic_mmio_bad.cpp: MMIO through named register
// constants. A literal *channel* argument to dma_bank is fine — only the
// field offset must be named.
#include "peach2/registers.h"

namespace fixture {

namespace regs = tca::peach2::regs;

// A declaration whose first parameter is a type is not a call.
void write_register(unsigned long offset, unsigned long value);

void poke(Chip& chip) {
  chip.write_register(regs::dma_bank(1, regs::kDmaBankTableAddr), 1);
  const auto status = chip.read_register(regs::kDmaStatus);
  (void)status;
  const auto doorbell = regs::dma_bank(1, regs::kDmaBankDoorbell);
  (void)doorbell;
}

}  // namespace fixture
