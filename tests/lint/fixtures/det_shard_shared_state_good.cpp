// Clean twin of det_shard_shared_state_bad.cpp: every static on a shard
// execution path is immutable, synchronized, or per-thread — or carries a
// justified allow when a counter is genuinely diagnostic-only.
#include <atomic>
#include <cstdint>

namespace fixture {

static constexpr std::uint64_t kEpochWindowPs = 25'000;  // immutable

inline static std::atomic<std::uint64_t> g_events_executed{0};  // synchronized

static thread_local std::uint64_t t_shard_scratch = 0;  // per-worker

// Read exclusively after the worker pool has joined.
// tca-lint: allow(det-shard-shared-state): debug-only high-water mark
static std::uint64_t g_debug_high_water = 0;

std::uint64_t next_sequence() {
  t_shard_scratch += kEpochWindowPs;
  if (t_shard_scratch > g_debug_high_water) {
    g_debug_high_water = t_shard_scratch;
  }
  return g_events_executed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fixture
