// Clean twin of proto_ack_before_commit_bad.cpp: the notification is only
// reachable after the commit statement, exactly like the production
// RootComplex / GpuDevice commit lambdas.
#include <cstdint>

namespace fix {

struct Notifier {
  // tca-protocol: acks-on-commit
  void on_write_commit(std::uint64_t ack_address, std::uint8_t tag);
};

struct Dram {
  void write(std::uint64_t offset, int data);
};

// tca-protocol: commit-point, owns(commit-ack)
void deliver(Dram& dram, Notifier* notifier, std::uint64_t offset,
             std::uint64_t ack, std::uint8_t tag) {
  dram.write(offset, 1);  // tca-protocol: commit
  // tca-protocol: release(commit-ack)
  if (notifier != nullptr) notifier->on_write_commit(ack, tag);
}

}  // namespace fix
