// Seeded violations for every register-map rule: misaligned offset,
// duplicate/overlapping offsets, out-of-window register, bank-relative
// field overflowing its stride, absolute register shadowed by a decoded
// bank region, an alias that points nowhere, and constants/table drift.
#pragma once

#include <cstdint>

namespace fixture::regs {

inline constexpr std::uint64_t kWindowBytes = 64 << 10;
inline constexpr std::uint64_t kDmaBankBase = 0x200;
inline constexpr std::uint64_t kDmaBankStride = 0x80;
inline constexpr std::uint64_t kDmaChannelBanks = 4;
inline constexpr std::uint64_t kRouteBase = 0x400;
inline constexpr std::uint64_t kRouteStride = 0x20;
inline constexpr std::uint64_t kRouteEntries = 64;

inline constexpr std::uint64_t kChipId = 0x004;        // RO  (misaligned)
inline constexpr std::uint64_t kNodeId = 0x010;        // RW
inline constexpr std::uint64_t kNodeIdShadow = 0x010;  // RW  (duplicate offset)
inline constexpr std::uint64_t kOrphan = 0x030;        // RW  (missing from kRegMap)
inline constexpr std::uint64_t kBeyond = 0x10000;      // RO  (outside the window)
inline constexpr std::uint64_t kInsideDma = 0x280;     // RW  (inside the DMA region)
inline constexpr std::uint64_t kDmaBankHuge = 0x80;    // RW bank:dma (exceeds stride)
inline constexpr std::uint64_t kBadAlias = 0x218;      // alias (no such DMA field)

enum class RegAccess : unsigned char { kRO, kRW, kWO };
enum class RegBank : unsigned char { kGlobal, kDmaChannel, kRouteEntry };

struct RegSpec {
  std::uint64_t offset;
  RegAccess access;
  RegBank bank;
  const char* name;
  std::uint64_t span = 8;
};

inline constexpr RegSpec kRegMap[] = {
    {kChipId, RegAccess::kRO, RegBank::kGlobal, "kChipId"},
    {kNodeIdShadow, RegAccess::kRW, RegBank::kGlobal, "kNodeIdShadow"},
    {kBeyond, RegAccess::kRO, RegBank::kGlobal, "kBeyond"},
    {kInsideDma, RegAccess::kRW, RegBank::kGlobal, "kInsideDma"},
    {kDmaBankHuge, RegAccess::kRW, RegBank::kDmaChannel, "kDmaBankHuge"},
    // No constant is annotated at this offset — drift in the other direction.
    {0x020, RegAccess::kRO, RegBank::kGlobal, "kGhost"},
};

}  // namespace fixture::regs
