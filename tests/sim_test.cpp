// Unit tests for the discrete-event core: Scheduler, coroutine Tasks,
// Trigger and Semaphore.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::sim {
namespace {

using units::ns;
using units::us;

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(ns(30), [&] { order.push_back(3); });
  sched.schedule_at(ns(10), [&] { order.push_back(1); });
  sched.schedule_at(ns(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), ns(30));
  EXPECT_EQ(sched.events_processed(), 3u);
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(ns(10), [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  TimePs fired_at = -1;
  sched.schedule_at(ns(100), [&] {
    sched.schedule_after(ns(50), [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired_at, ns(150));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  auto id = sched.schedule_at(ns(10), [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double-cancel rejected
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelUnknownIdRejected) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(Scheduler::kInvalidEvent));
  EXPECT_FALSE(sched.cancel(9999));
}

TEST(Scheduler, RunUntilAdvancesTimeWithoutEvents) {
  Scheduler sched;
  sched.run_until(us(5));
  EXPECT_EQ(sched.now(), us(5));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(ns(10), [&] { ++fired; });
  sched.schedule_at(ns(20), [&] { ++fired; });
  sched.schedule_at(ns(30), [&] { ++fired; });
  sched.run_until(ns(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), ns(20));
  sched.run();
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.step());
  sched.schedule_at(0, [] {});
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sched.schedule_after(ns(1), recurse);
  };
  sched.schedule_at(0, recurse);
  sched.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), ns(9));
}

TEST(Scheduler, CancelledHeadDoesNotBlockRunUntil) {
  Scheduler sched;
  int fired = 0;
  auto id = sched.schedule_at(ns(10), [&] { ++fired; });
  sched.schedule_at(ns(20), [&] { ++fired; });
  ASSERT_TRUE(sched.cancel(id));
  sched.run_until(ns(15));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), ns(15));
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EmptyReflectsCancellations) {
  Scheduler sched;
  EXPECT_TRUE(sched.empty());
  auto id = sched.schedule_at(ns(5), [] {});
  EXPECT_FALSE(sched.empty());
  sched.cancel(id);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, FireOrderSurvivesCancelHeavyCompaction) {
  // Cancel-heavy churn — watchdogs armed and cancelled from inside running
  // callbacks, the shape DMA chain timeouts produce — drives thousands of
  // compact() sweeps. Regression: the in-place heap rebuild used to skip
  // the last internal node whenever the survivor count was 2 or 3 mod 4,
  // and one of those skipped nodes eventually surfaced as simulated time
  // running backwards. Bulk cancel-then-drain self-heals (the damaged
  // node's children sit at the array tail, which refills the root first),
  // so the churn must interleave with draining; this seed fails the old
  // rebuild within ~200k ticks.
  Rng rng(8 * 0x9e3779b97f4a7c15ull);
  Scheduler sched;
  std::vector<Scheduler::EventId> watchdogs;
  TimePs last_fired = 0;
  std::uint64_t budget = 200000;
  std::function<void()> tick = [&] {
    ASSERT_GE(sched.now(), last_fired);
    last_fired = sched.now();
    if (budget-- == 0) return;
    while (watchdogs.size() > 8) {  // most watchdogs "complete": cancel
      std::size_t k = rng.next_below(watchdogs.size());
      sched.cancel(watchdogs[k]);
      watchdogs[k] = watchdogs.back();
      watchdogs.pop_back();
    }
    const std::uint64_t burst = 8 + rng.next_below(56);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const TimePs t =
          sched.now() + ns(1 + static_cast<TimePs>(rng.next_below(5000)));
      watchdogs.push_back(sched.schedule_at(t, [] {}));
    }
    sched.schedule_after(ns(1 + static_cast<TimePs>(rng.next_below(40))),
                         tick);
  };
  sched.schedule_at(0, tick);
  sched.run();
  EXPECT_EQ(budget, std::numeric_limits<std::uint64_t>::max());
}

// --- Coroutine tasks -------------------------------------------------------

Task<> wait_twice(Scheduler& sched, std::vector<TimePs>& log) {
  co_await Delay(sched, ns(10));
  log.push_back(sched.now());
  co_await Delay(sched, ns(15));
  log.push_back(sched.now());
}

TEST(Task, DelaysAdvanceSimTime) {
  Scheduler sched;
  std::vector<TimePs> log;
  Task<> t = wait_twice(sched, log);
  EXPECT_FALSE(t.done());
  sched.run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(log, (std::vector<TimePs>{ns(10), ns(25)}));
}

Task<int> compute_after(Scheduler& sched, TimePs delay, int value) {
  co_await Delay(sched, delay);
  co_return value;
}

TEST(Task, ReturnsValue) {
  Scheduler sched;
  Task<int> t = compute_after(sched, ns(5), 42);
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 42);
}

Task<int> awaits_subtask(Scheduler& sched) {
  int a = co_await compute_after(sched, ns(10), 7);
  int b = co_await compute_after(sched, ns(10), 35);
  co_return a + b;
}

TEST(Task, AwaitingSubtasksComposes) {
  Scheduler sched;
  Task<int> t = awaits_subtask(sched);
  sched.run();
  EXPECT_EQ(t.result(), 42);
  EXPECT_EQ(sched.now(), ns(20));
}

TEST(Task, AwaitingCompletedTaskResumesImmediately) {
  Scheduler sched;
  auto outer = [](Scheduler& s) -> Task<int> {
    Task<int> inner = compute_after(s, ns(1), 5);
    co_await Delay(s, ns(100));  // inner finishes long before
    int v = co_await std::move(inner);
    co_return v;
  };
  Task<int> t = outer(sched);
  sched.run();
  EXPECT_EQ(t.result(), 5);
}

TEST(Task, SpawnDetachesAndRuns) {
  Scheduler sched;
  bool done = false;
  spawn([](Scheduler& s, bool& flag) -> Task<> {
    co_await Delay(s, ns(50));
    flag = true;
  }(sched, done));
  sched.run();
  EXPECT_TRUE(done);
}

TEST(Task, EagerStartRunsToFirstSuspension) {
  Scheduler sched;
  bool started = false;
  auto t = [](Scheduler& s, bool& flag) -> Task<> {
    flag = true;
    co_await Delay(s, ns(1));
  }(sched, started);
  EXPECT_TRUE(started);  // body ran before scheduler did
  sched.run();
}

// --- Trigger ---------------------------------------------------------------

TEST(Trigger, WaitersResumeOnFire) {
  Scheduler sched;
  Trigger trig(sched);
  std::vector<TimePs> woke;
  for (int i = 0; i < 3; ++i) {
    spawn([](Trigger& t, Scheduler& s, std::vector<TimePs>& log) -> Task<> {
      co_await t.wait();
      log.push_back(s.now());
    }(trig, sched, woke));
  }
  sched.schedule_at(ns(100), [&] { trig.fire(); });
  sched.run();
  EXPECT_EQ(woke, (std::vector<TimePs>{ns(100), ns(100), ns(100)}));
}

TEST(Trigger, FiredTriggerDoesNotBlock) {
  Scheduler sched;
  Trigger trig(sched);
  trig.fire();
  TimePs woke = -1;
  spawn([](Trigger& t, Scheduler& s, TimePs& at) -> Task<> {
    co_await t.wait();
    at = s.now();
  }(trig, sched, woke));
  sched.run();
  EXPECT_EQ(woke, 0);
}

TEST(Trigger, ResetRearms) {
  Scheduler sched;
  Trigger trig(sched);
  trig.fire();
  EXPECT_TRUE(trig.fired());
  trig.reset();
  EXPECT_FALSE(trig.fired());
  int wakes = 0;
  spawn([](Trigger& t, int& n) -> Task<> {
    co_await t.wait();
    ++n;
  }(trig, wakes));
  sched.run();
  EXPECT_EQ(wakes, 0);  // still waiting
  trig.fire();
  sched.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Trigger, PulseWakesWithoutLatching) {
  Scheduler sched;
  Trigger trig(sched);
  int wakes = 0;
  spawn([](Trigger& t, int& n) -> Task<> {
    co_await t.wait();
    ++n;
    co_await t.wait();  // must wait again: pulse does not latch
    ++n;
  }(trig, wakes));
  trig.pulse();
  sched.run();
  EXPECT_EQ(wakes, 1);
  trig.pulse();
  sched.run();
  EXPECT_EQ(wakes, 2);
  EXPECT_FALSE(trig.fired());
}

// --- Barrier ---------------------------------------------------------------

TEST(Barrier, ReleasesOnlyWhenAllArrive) {
  Scheduler sched;
  Barrier barrier(sched, 3);
  std::vector<TimePs> exits;
  for (int i = 0; i < 3; ++i) {
    spawn([](Scheduler& s, Barrier& b, int delay,
             std::vector<TimePs>& log) -> Task<> {
      co_await Delay(s, ns(delay));
      co_await b.arrive();
      log.push_back(s.now());
    }(sched, barrier, (i + 1) * 100, exits));
  }
  sched.run();
  ASSERT_EQ(exits.size(), 3u);
  for (TimePs t : exits) EXPECT_GE(t, ns(300));  // last arrival gates all
}

TEST(Barrier, ReusableAcrossRounds) {
  Scheduler sched;
  Barrier barrier(sched, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    spawn([](Scheduler& s, Barrier& b, int id, int& done) -> Task<> {
      for (int round = 0; round < 5; ++round) {
        co_await Delay(s, ns(10 * (id + 1)));
        co_await b.arrive();
      }
      ++done;
    }(sched, barrier, i, rounds_done));
  }
  sched.run();
  EXPECT_EQ(rounds_done, 2);
  EXPECT_EQ(barrier.waiting(), 0u);
}

// --- Task exceptions ---------------------------------------------------------

Task<int> throws_after_delay(Scheduler& sched) {
  co_await Delay(sched, ns(5));
  throw std::runtime_error("engine fault");
  co_return 0;  // unreachable
}

TEST(Task, ExceptionPropagatesToResult) {
  Scheduler sched;
  Task<int> t = throws_after_delay(sched);
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_THROW((void)t.result(), std::runtime_error);
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  Scheduler sched;
  auto outer = [](Scheduler& s) -> Task<int> {
    try {
      co_return co_await throws_after_delay(s);
    } catch (const std::runtime_error&) {
      co_return -1;
    }
  };
  Task<int> t = outer(sched);
  sched.run();
  EXPECT_EQ(t.result(), -1);
}

// --- Semaphore ---------------------------------------------------------------

TEST(Semaphore, LimitsConcurrency) {
  Scheduler sched;
  Semaphore sem(sched, 2);
  int active = 0, peak = 0, completed = 0;
  for (int i = 0; i < 6; ++i) {
    spawn([](Scheduler& s, Semaphore& gate, int& act, int& pk,
             int& done) -> Task<> {
      co_await gate.acquire();
      ++act;
      pk = std::max(pk, act);
      co_await Delay(s, ns(10));
      --act;
      ++done;
      gate.release();
    }(sched, sem, active, peak, completed));
  }
  sched.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, TryAcquire) {
  Scheduler sched;
  Semaphore sem(sched, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, FifoFairness) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    spawn([](Semaphore& gate, std::vector<int>& log, int id) -> Task<> {
      co_await gate.acquire();
      log.push_back(id);
      gate.release();
    }(sem, order, i));
  }
  sched.run();
  EXPECT_TRUE(order.empty());
  sem.release();
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Semaphore, ReleaseManyWakesMany) {
  Scheduler sched;
  Semaphore sem(sched, 0);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](Semaphore& gate, int& n) -> Task<> {
      co_await gate.acquire();
      ++n;
    }(sem, woke));
  }
  sem.release(3);
  sched.run();
  EXPECT_EQ(woke, 3);
  EXPECT_EQ(sem.available(), 0);
}

}  // namespace
}  // namespace tca::sim
