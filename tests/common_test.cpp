// Unit tests for src/common: units, errors, RNG, stats, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace tca {
namespace {

using units::ns;
using units::us;

TEST(Units, Constructors) {
  EXPECT_EQ(ns(1), 1000);
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(units::ms(1), 1'000'000'000);
  EXPECT_EQ(units::ps(42), 42);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::to_ns(ns(782)), 782.0);
  EXPECT_DOUBLE_EQ(units::to_us(us(3)), 3.0);
  EXPECT_DOUBLE_EQ(units::to_s(units::kSecond), 1.0);
}

TEST(Units, SizeHelpers) {
  EXPECT_EQ(units::kib(4), 4096u);
  EXPECT_EQ(units::mib(1), 1u << 20);
  EXPECT_EQ(units::gib(512), 512ull << 30);
}

TEST(Units, Bandwidth) {
  // 4096 bytes in 1 us = 4.096 GB/s.
  EXPECT_DOUBLE_EQ(units::bytes_per_second(4096, us(1)), 4.096e9);
  EXPECT_DOUBLE_EQ(units::gbytes_per_second(4096, us(1)), 4.096);
  EXPECT_DOUBLE_EQ(units::bytes_per_second(100, 0), 0.0);
}

TEST(Units, PaperPeakFormula) {
  // The paper's theoretical peak: 4 GB/s * 256/280 = 3.657 GB/s, i.e. a
  // 280-wire-byte TLP carrying 256 payload bytes every 70 ns.
  const double peak = units::gbytes_per_second(256, ns(70));
  EXPECT_NEAR(peak, 3.657, 0.01);
}

TEST(Units, FormatTime) {
  EXPECT_EQ(units::format_time(ns(782)), "782 ns");
  EXPECT_EQ(units::format_time(units::ps(500)), "500 ps");
  EXPECT_EQ(units::format_time(0), "0 ps");
}

TEST(Units, FormatSize) {
  EXPECT_EQ(units::format_size(256), "256 B");
  EXPECT_EQ(units::format_size(4096), "4 KiB");
  EXPECT_EQ(units::format_size(1u << 20), "1 MiB");
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kUnreachable, "no route to node 3");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kUnreachable);
  EXPECT_EQ(s.to_string(), "UNREACHABLE: no route to node 3");
}

TEST(Status, EveryErrorCodeRoundTripsThroughToString) {
  // A new ErrorCode cannot ship unnamed: every value in the enum's range
  // must render to a unique, non-fallback string.
  std::set<std::string> names;
  for (int i = 0; i < kErrorCodeCount; ++i) {
    const char* name = to_string(static_cast<ErrorCode>(i));
    EXPECT_STRNE(name, "UNKNOWN") << "ErrorCode " << i << " has no name";
    EXPECT_TRUE(names.insert(name).second) << name << " used twice";
  }
  EXPECT_STREQ(to_string(static_cast<ErrorCode>(kErrorCodeCount)), "UNKNOWN");
}

TEST(Status, RecoveryCodesRender) {
  EXPECT_STREQ(to_string(ErrorCode::kTimedOut), "TIMED_OUT");
  EXPECT_STREQ(to_string(ErrorCode::kLinkDown), "LINK_DOWN");
}

TEST(Result, Value) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, Error) {
  Result<int> r(Status{ErrorCode::kBusy, "channel active"});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBusy);
}

TEST(Rng, Deterministic) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextInInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FillCoversWholeSpan) {
  Rng r(11);
  std::vector<std::byte> buf(37, std::byte{0});
  r.fill(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += (b != std::byte{0});
  EXPECT_GT(nonzero, 20);  // overwhelmingly likely for random bytes
}

TEST(RunningStats, Basic) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSeries, Percentiles) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.02);
}

TEST(SampleSeries, AddAfterQueryResorts) {
  SampleSeries s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter t({"Size", "BW"});
  t.add_row({"4 KiB", "3.30"});
  t.add_row({"64 B", "0.45"});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(TablePrinter::cell(3.297, 2), "3.30");
  EXPECT_EQ(TablePrinter::cell(std::uint64_t{255}), "255");
}

}  // namespace
}  // namespace tca
