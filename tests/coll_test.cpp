// Tests for tca::coll — the communicator-based collective library.
//
// The load-bearing suites cross-validate every collective against either
// baseline::Collectives (bitwise, same ring fold order) or an explicit
// ring-fold reference model, across rank counts, payload sizes and
// host/GPU residency. The Recovery pair reruns the PR-3 acceptance
// scenario at the collective level: an allreduce crossing a FaultPlan-cut
// ring cable completes via failover + doorbell retry, and with failover
// disabled the same campaign surfaces kTimedOut instead of wedging. The
// Soak sweep (ctest label: soak) randomizes the whole matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/tca.h"
#include "baseline/collectives.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "coll/communicator.h"
#include "common/rng.h"
#include "common/trace.h"
#include "obs/metrics.h"

namespace tca::coll {
namespace {

using units::ms;
using units::us;

api::TcaConfig cluster_of(std::uint32_t nodes) {
  return api::TcaConfig{.spec = fabric::TopologySpec::ring(nodes),
                        .node_config = {.gpu_count = 2,
                                        .host_backing_bytes = 16 << 20,
                                        .gpu_backing_bytes = 8 << 20}};
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 31 + i * 7) & 0xff);
  }
  return v;
}

/// Per-rank input vectors, deterministic in (seed, rank, index).
std::vector<std::vector<double>> make_inputs(std::uint64_t seed,
                                             std::uint32_t ranks,
                                             std::uint64_t count) {
  Rng rng(seed);
  std::vector<std::vector<double>> in(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    in[r].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      in[r][i] = (static_cast<double>(rng.next_below(4000)) - 2000.0) / 64.0;
    }
  }
  return in;
}

/// The ring fold for chunk `c` with first contributor `first`:
///   acc = in[first]; then acc = in[first+k] + acc for k = 1..n-1
/// — the exact per-step `own + incoming` order both tca::coll and
/// baseline::Collectives apply. allreduce folds chunk c with first = c;
/// reduce_scatter (shift -1, owner r = c) with first = c + 1.
std::vector<double> ring_fold_reference(
    const std::vector<std::vector<double>>& in, std::uint64_t chunk_elems,
    std::uint64_t c, std::uint32_t first) {
  const auto n = static_cast<std::uint32_t>(in.size());
  std::vector<double> out(chunk_elems);
  for (std::uint64_t i = 0; i < chunk_elems; ++i) {
    double acc = in[first][c * chunk_elems + i];
    for (std::uint32_t k = 1; k < n; ++k) {
      acc = in[(first + k) % n][c * chunk_elems + i] + acc;
    }
    out[i] = acc;
  }
  return out;
}

/// Runs the same allreduce over the conventional MPI/IB stack. Pure host
/// spans: the FP result only depends on the fold order, which is what the
/// bitwise comparisons check.
std::vector<std::vector<double>> baseline_allreduce(
    std::uint32_t n, std::vector<std::vector<double>> data) {
  sim::Scheduler sched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<node::ComputeNode>(
        sched, static_cast<int>(i),
        node::NodeConfig{.gpu_count = 2,
                         .host_backing_bytes = 8 << 20,
                         .gpu_backing_bytes = 4 << 20}));
  }
  std::vector<node::ComputeNode*> ptrs;
  for (auto& p : nodes) ptrs.push_back(p.get());
  baseline::IbFabric fabric(sched, ptrs);
  baseline::MpiLite mpi(sched, fabric);
  baseline::Collectives coll(mpi, n);
  for (std::uint32_t r = 0; r < n; ++r) {
    sim::spawn([](baseline::Collectives& c, std::uint32_t rank,
                  std::span<double> d) -> sim::Task<> {
      co_await c.allreduce_sum(rank, d);
    }(coll, r, std::span(data[r])));
  }
  sched.run();
  return data;
}

/// Allocates one buffer per rank (host or GPU 0) and loads the inputs.
std::vector<api::Buffer> load_inputs(
    api::Runtime& rt, const std::vector<std::vector<double>>& in, bool host) {
  std::vector<api::Buffer> bufs(in.size());
  for (std::uint32_t r = 0; r < in.size(); ++r) {
    const std::uint64_t bytes = in[r].size() * sizeof(double);
    bufs[r] = host ? rt.alloc_host(r, bytes).value()
                   : rt.alloc_gpu(r, 0, bytes).value();
    rt.write(bufs[r], 0, std::as_bytes(std::span(in[r])));
  }
  return bufs;
}

std::vector<double> read_doubles(api::Runtime& rt, api::Buffer buf,
                                 std::uint64_t offset, std::uint64_t count) {
  std::vector<double> out(count);
  rt.read(buf, offset, std::as_writable_bytes(std::span(out)));
  return out;
}

/// Spawns `comm.allreduce_sum` on every rank and runs the scheduler.
std::vector<Status> run_allreduce(sim::Scheduler& sched, Communicator& comm,
                                  const std::vector<api::Buffer>& bufs,
                                  std::uint64_t count) {
  std::vector<Status> st(comm.ranks());
  for (std::uint32_t r = 0; r < comm.ranks(); ++r) {
    sim::spawn([](Communicator& c, api::Buffer b, std::uint32_t rank,
                  std::uint64_t n, Status& out) -> sim::Task<> {
      out = co_await c.allreduce_sum(rank, b, 0, n);
    }(comm, bufs[r], r, count, st[r]));
  }
  sched.run();
  return st;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct ScopedSampling {
  ScopedSampling() { obs::set_sampling_enabled(true); }
  ~ScopedSampling() { obs::set_sampling_enabled(false); }
};

// --- Construction & algorithm selection --------------------------------------

TEST(Coll, CreateValidatesConfig) {
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(4));

  auto bad_slots = Communicator::create(rt, CollConfig{.staging_slots = 1});
  EXPECT_FALSE(bad_slots.is_ok());
  EXPECT_EQ(bad_slots.status().code(), ErrorCode::kInvalidArgument);

  auto bad_seg =
      Communicator::create(rt, CollConfig{.pipeline_seg_bytes = 1001});
  EXPECT_FALSE(bad_seg.is_ok());

  auto ok = Communicator::create(rt);
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().ranks(), 4u);
}

TEST(Coll, AlgorithmSelectionFollowsSizeAndResidency) {
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(2));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());
  const Communicator& c = comm.value();

  // Host payloads at or below the threshold go eager; everything else —
  // bigger, or GPU-resident at any size — rides the DMA ring.
  EXPECT_EQ(c.select_algorithm(64, true), Algorithm::kEager);
  EXPECT_EQ(c.select_algorithm(2048, true), Algorithm::kEager);
  EXPECT_EQ(c.select_algorithm(2049, true), Algorithm::kRing);
  EXPECT_EQ(c.select_algorithm(64, false), Algorithm::kRing);
  EXPECT_EQ(c.select_algorithm(1 << 20, false), Algorithm::kRing);
}

// --- Allreduce vs the conventional stack (bitwise) ---------------------------

struct AllreduceCase {
  std::uint32_t ranks;
  std::uint64_t count;  // doubles per rank (divisible by ranks)
  bool host;
};

class AllreduceVsBaseline : public ::testing::TestWithParam<AllreduceCase> {};

TEST_P(AllreduceVsBaseline, MatchesBitwise) {
  const AllreduceCase& p = GetParam();
  const auto in = make_inputs(0x5eed0 + p.ranks, p.ranks, p.count);

  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(p.ranks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok()) << comm.status().to_string();
  auto bufs = load_inputs(rt, in, p.host);

  const auto st = run_allreduce(sched, comm.value(), bufs, p.count);
  for (std::uint32_t r = 0; r < p.ranks; ++r) {
    ASSERT_TRUE(st[r].is_ok()) << "rank " << r << ": " << st[r].to_string();
  }

  const auto expected = baseline_allreduce(p.ranks, in);
  for (std::uint32_t r = 0; r < p.ranks; ++r) {
    const auto got = read_doubles(rt, bufs[r], 0, p.count);
    EXPECT_TRUE(bitwise_equal(got, expected[r]))
        << "rank " << r << " diverged from baseline::Collectives";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesRanksResidency, AllreduceVsBaseline,
    ::testing::Values(
        AllreduceCase{2, 64, true},     // 512 B host: eager path
        AllreduceCase{2, 256, true},    // 2 KB host: eager, at the threshold
        AllreduceCase{4, 64, true},     // eager with a gather fan-in
        AllreduceCase{4, 4096, true},   // 32 KB host: ring, no staging
        AllreduceCase{4, 4096, false},  // 32 KB GPU: ring, staged + carried
        AllreduceCase{8, 8192, false}), // 64 KB GPU on 8 ranks
    [](const auto& param_info) {
      const AllreduceCase& c = param_info.param;
      return std::to_string(c.ranks) + "ranks_" + std::to_string(c.count) +
             (c.host ? "_host" : "_gpu");
    });

TEST(Coll, AllreduceLargeGpuStagesOnceThenCarries) {
  // 256 KB per rank on 4 ranks: every chunk is one 64 KB segment, so per
  // rank the six ring sends (3 reduce-scatter + 3 allgather) stage exactly
  // the first one D2H and forward the other five from the host-carried
  // fold of the previous step.
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kCount = 32768;
  const auto in = make_inputs(0xca44, kRanks, kCount);

  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());
  auto bufs = load_inputs(rt, in, /*host=*/false);

  const auto st = run_allreduce(sched, comm.value(), bufs, kCount);
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

  const CollMetrics& m = comm.value().metrics();
  EXPECT_GT(m.staged_d2h_bytes, 0u);
  EXPECT_GT(m.host_carry_bytes, 0u);
  // The carry does the bulk of the work: 5 of 6 sends per rank.
  EXPECT_EQ(m.staged_d2h_bytes, kRanks * (kCount / kRanks) * 8);
  EXPECT_EQ(m.host_carry_bytes, 5 * m.staged_d2h_bytes);

  // Bit-identical to the conventional stack even with the carry in play.
  const auto expected = baseline_allreduce(kRanks, in);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(bitwise_equal(read_doubles(rt, bufs[r], 0, kCount),
                              expected[r]))
        << "rank " << r;
  }
}

// --- Reduce-scatter / allgather against the fold reference -------------------

TEST(Coll, ReduceScatterOwnsChunkWithRingFoldOrder) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kCount = 1024;
  constexpr std::uint64_t kChunk = kCount / kRanks;
  const auto in = make_inputs(0x5ca7, kRanks, kCount);

  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());
  auto bufs = load_inputs(rt, in, /*host=*/true);

  std::vector<Status> st(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, api::Buffer b, std::uint32_t rank,
                  Status& out) -> sim::Task<> {
      out = co_await c.reduce_scatter_sum(rank, b, 0, kCount);
    }(comm.value(), bufs[r], r, st[r]));
  }
  sched.run();
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

  // Rank r owns chunk r, folded in ring order with first contributor r+1.
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    const auto expected =
        ring_fold_reference(in, kChunk, r, (r + 1) % kRanks);
    const auto got = read_doubles(rt, bufs[r], r * kChunk * 8, kChunk);
    EXPECT_TRUE(bitwise_equal(got, expected)) << "rank " << r;
  }
}

TEST(Coll, AllgatherReplicatesEveryChunkEverywhere) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kChunkBytes = 16 << 10;  // >= gpu_staging_min

  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());

  std::vector<api::Buffer> bufs(kRanks);
  std::vector<std::vector<std::byte>> chunk(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    bufs[r] = rt.alloc_gpu(r, 0, kRanks * kChunkBytes).value();
    chunk[r] = pattern(kChunkBytes, static_cast<std::uint8_t>(r + 1));
    rt.write(bufs[r], r * kChunkBytes, chunk[r]);
  }

  std::vector<Status> st(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, api::Buffer b, std::uint32_t rank,
                  Status& out) -> sim::Task<> {
      out = co_await c.allgather(rank, b, 0, kChunkBytes);
    }(comm.value(), bufs[r], r, st[r]));
  }
  sched.run();
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

  for (std::uint32_t r = 0; r < kRanks; ++r) {
    for (std::uint32_t c = 0; c < kRanks; ++c) {
      std::vector<std::byte> out(kChunkBytes);
      rt.read(bufs[r], c * kChunkBytes, out);
      EXPECT_EQ(out, chunk[c]) << "rank " << r << " chunk " << c;
    }
  }
}

// --- Broadcast ---------------------------------------------------------------

TEST(Coll, BroadcastEagerDeliversSmallHostPayloads) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kBytes = 1024;
  constexpr std::uint32_t kRoot = 2;

  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());

  const auto payload = pattern(kBytes, 9);
  std::vector<api::Buffer> bufs(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    bufs[r] = rt.alloc_host(r, kBytes).value();
    if (r == kRoot) rt.write(bufs[r], 0, payload);
  }

  std::vector<Status> st(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, api::Buffer b, std::uint32_t rank,
                  Status& out) -> sim::Task<> {
      out = co_await c.broadcast(rank, kRoot, b, 0, kBytes);
    }(comm.value(), bufs[r], r, st[r]));
  }
  sched.run();
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_GT(comm.value().metrics().eager_ops, 0u);

  for (std::uint32_t r = 0; r < kRanks; ++r) {
    std::vector<std::byte> out(kBytes);
    rt.read(bufs[r], 0, out);
    EXPECT_EQ(out, payload) << "rank " << r;
  }
}

TEST(Coll, BroadcastRingRelaysLargeGpuPayloads) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kBytes = 128 << 10;  // 2 segments/rank, relayed
  constexpr std::uint32_t kRoot = 1;

  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());

  const auto payload = pattern(kBytes, 17);
  std::vector<api::Buffer> bufs(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    bufs[r] = rt.alloc_gpu(r, 0, kBytes).value();
    if (r == kRoot) rt.write(bufs[r], 0, payload);
  }

  std::vector<Status> st(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, api::Buffer b, std::uint32_t rank,
                  Status& out) -> sim::Task<> {
      out = co_await c.broadcast(rank, kRoot, b, 0, kBytes);
    }(comm.value(), bufs[r], r, st[r]));
  }
  sched.run();
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_GT(comm.value().metrics().ring_ops, 0u);
  EXPECT_GT(comm.value().metrics().staged_d2h_bytes, 0u);  // root staged

  for (std::uint32_t r = 0; r < kRanks; ++r) {
    std::vector<std::byte> out(kBytes);
    rt.read(bufs[r], 0, out);
    EXPECT_EQ(out, payload) << "rank " << r;
  }
}

// --- Barrier -----------------------------------------------------------------

TEST(Coll, BarrierReleasesOnlyAfterTheLastArrival) {
  constexpr std::uint32_t kRanks = 4;
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());

  // Two consecutive barriers (distinct epochs); rank r arrives at r*10us.
  std::vector<Status> st(kRanks);
  std::vector<TimePs> released(kRanks, 0);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, sim::Scheduler& s, std::uint32_t rank,
                  Status& out, TimePs& when) -> sim::Task<> {
      co_await sim::Delay(s, us(10) * rank);
      out = co_await c.barrier(rank);
      if (out.is_ok()) out = co_await c.barrier(rank);
      when = s.now();
    }(comm.value(), sched, r, st[r], released[r]));
  }
  sched.run();
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(st[r].is_ok()) << "rank " << r << ": " << st[r].to_string();
    // Nobody may leave the first barrier before the last rank arrived.
    EXPECT_GE(released[r], us(10) * (kRanks - 1)) << "rank " << r;
  }
  EXPECT_EQ(comm.value().metrics().barrier_ops, 2u * kRanks);
}

// --- Halo exchange -----------------------------------------------------------

// Region layout within each rank's buffer, in units of `bytes`:
//   [0] recv_from_prev  [1] send_to_prev  [2] send_to_next  [3] recv_from_next
HaloSpec halo_spec(api::Buffer buf, std::uint64_t bytes) {
  return HaloSpec{.buf = buf,
                  .send_to_next_off = 2 * bytes,
                  .send_to_prev_off = bytes,
                  .recv_from_prev_off = 0,
                  .recv_from_next_off = 3 * bytes,
                  .bytes = bytes};
}

void run_halo_and_verify(std::uint64_t bytes, bool host) {
  constexpr std::uint32_t kRanks = 4;
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());

  std::vector<api::Buffer> bufs(kRanks);
  std::vector<std::vector<std::byte>> to_prev(kRanks), to_next(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    bufs[r] = host ? rt.alloc_host(r, 4 * bytes).value()
                   : rt.alloc_gpu(r, 0, 4 * bytes).value();
    to_prev[r] = pattern(bytes, static_cast<std::uint8_t>(2 * r + 1));
    to_next[r] = pattern(bytes, static_cast<std::uint8_t>(2 * r + 2));
    rt.write(bufs[r], bytes, to_prev[r]);
    rt.write(bufs[r], 2 * bytes, to_next[r]);
  }

  std::vector<Status> st(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, HaloSpec spec, std::uint32_t rank,
                  Status& out) -> sim::Task<> {
      out = co_await c.neighbor_exchange(rank, spec);
    }(comm.value(), halo_spec(bufs[r], bytes), r, st[r]));
  }
  sched.run();
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

  for (std::uint32_t r = 0; r < kRanks; ++r) {
    const std::uint32_t prev = (r + kRanks - 1) % kRanks;
    const std::uint32_t next = (r + 1) % kRanks;
    std::vector<std::byte> got(bytes);
    rt.read(bufs[r], 0, got);
    EXPECT_EQ(got, to_next[prev]) << "rank " << r << " from prev";
    rt.read(bufs[r], 3 * bytes, got);
    EXPECT_EQ(got, to_prev[next]) << "rank " << r << " from next";
  }
  EXPECT_EQ(comm.value().metrics().halo_ops, kRanks);
}

TEST(Coll, NeighborExchangeEagerMovesSmallHostRows) {
  run_halo_and_verify(/*bytes=*/512, /*host=*/true);
}

TEST(Coll, NeighborExchangeDmaMovesLargeGpuRows) {
  run_halo_and_verify(/*bytes=*/16 << 10, /*host=*/false);
}

// --- Argument validation & op-sequence divergence ----------------------------

TEST(Coll, ValidatesCollectiveArguments) {
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(4));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());
  Communicator& c = comm.value();
  auto mine = rt.alloc_host(0, 4096).value();
  auto theirs = rt.alloc_host(1, 4096).value();

  auto bad_rank = c.barrier(9);
  sched.run();
  EXPECT_EQ(bad_rank.result().code(), ErrorCode::kInvalidArgument);

  auto wrong_node = c.allreduce_sum(0, theirs, 0, 4);  // buffer on node 1
  sched.run();
  EXPECT_EQ(wrong_node.result().code(), ErrorCode::kInvalidArgument);

  auto overflow = c.broadcast(0, 0, mine, 4000, 1024);
  sched.run();
  EXPECT_EQ(overflow.result().code(), ErrorCode::kOutOfRange);

  auto bad_count = c.allreduce_sum(0, mine, 0, 6);  // not a multiple of 4
  sched.run();
  EXPECT_EQ(bad_count.result().code(), ErrorCode::kInvalidArgument);

  auto big_halo = c.neighbor_exchange(
      0, HaloSpec{.buf = mine, .bytes = 128 << 10});  // > one staging slot
  sched.run();
  EXPECT_EQ(big_halo.result().code(), ErrorCode::kInvalidArgument);
}

TEST(Coll, DivergedOpSequenceIsDetectedDeterministically) {
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(2));
  // Bounded waits so the non-diverged rank reports kTimedOut instead of
  // polling forever for a partner that took a different branch.
  auto comm = Communicator::create(rt, CollConfig{.flag_timeout_ps = us(500)});
  ASSERT_TRUE(comm.is_ok());
  auto bufs = load_inputs(rt, make_inputs(1, 2, 64), /*host=*/true);

  std::vector<Status> st(2);
  sim::spawn([](Communicator& c, api::Buffer b, Status& out) -> sim::Task<> {
    out = co_await c.allreduce_sum(0, b, 0, 64);
  }(comm.value(), bufs[0], st[0]));
  sim::spawn([](Communicator& c, Status& out) -> sim::Task<> {
    out = co_await c.barrier(1);  // diverges: rank 0 called allreduce
  }(comm.value(), st[1]));
  sched.run();

  // Rank 0 registered the op first, so rank 1 is the one that diverged;
  // rank 0's wait for its vanished partner expires instead of hanging.
  EXPECT_EQ(st[1].code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(st[0].code(), ErrorCode::kTimedOut);
}

// --- Metrics & export --------------------------------------------------------

TEST(Coll, MetricsCountOpsAndExportThroughTheRegistry) {
  ScopedSampling sampling;
  constexpr std::uint32_t kRanks = 4;
  sim::Scheduler sched;
  api::Runtime rt(sched, cluster_of(kRanks));
  auto comm = Communicator::create(rt);
  ASSERT_TRUE(comm.is_ok());

  const auto eager_in = make_inputs(2, kRanks, 64);     // 512 B: eager
  const auto ring_in = make_inputs(3, kRanks, 16384);   // 128 KB GPU: ring
  auto eager_bufs = load_inputs(rt, eager_in, /*host=*/true);
  auto ring_bufs = load_inputs(rt, ring_in, /*host=*/false);

  std::vector<Status> st(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    sim::spawn([](Communicator& c, api::Buffer eager_buf, api::Buffer ring_buf,
                  std::uint32_t rank, Status& out) -> sim::Task<> {
      out = co_await c.barrier(rank);
      if (out.is_ok()) {
        out = co_await c.allreduce_sum(rank, eager_buf, 0, 64);
      }
      if (out.is_ok()) {
        out = co_await c.allreduce_sum(rank, ring_buf, 0, 16384);
      }
    }(comm.value(), eager_bufs[r], ring_bufs[r], r, st[r]));
  }
  sched.run();
  for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

  const CollMetrics& m = comm.value().metrics();
  EXPECT_EQ(m.barrier_ops, kRanks);
  EXPECT_EQ(m.allreduce_ops, 2u * kRanks);
  EXPECT_EQ(m.eager_ops, kRanks);
  EXPECT_EQ(m.ring_ops, kRanks);
  EXPECT_GT(m.bytes, 0u);
  EXPECT_GT(m.staged_d2h_bytes, 0u);
  EXPECT_GT(m.host_carry_bytes, 0u);
  EXPECT_EQ(m.put_retries, 0u);  // healthy fabric

  obs::MetricRegistry reg;
  comm.value().export_metrics(reg);
  EXPECT_EQ(reg.counter_value("coll.barrier_ops"), kRanks);
  EXPECT_EQ(reg.counter_value("coll.allreduce_ops"), 2u * kRanks);
  EXPECT_EQ(reg.counter_value("coll.host_carry_bytes"), m.host_carry_bytes);
  EXPECT_EQ(reg.counter_value("coll.staged_d2h_bytes"), m.staged_d2h_bytes);
  EXPECT_TRUE(reg.has_histogram("coll.barrier.latency_ps"));
  EXPECT_TRUE(reg.has_histogram("coll.allreduce.eager_latency_ps"));
  EXPECT_TRUE(reg.has_histogram("coll.allreduce.ring_latency_ps"));
  // The api.* and fabric.* roll-ups ride along in the same registry.
  EXPECT_TRUE(reg.has_counter("api.memcpy.ops"));
  EXPECT_TRUE(reg.has_counter("fabric.payload_bytes"));
}

// --- Fault recovery ----------------------------------------------------------

TEST(Recovery, CollAllreduceSurvivesRingCableCutViaFailover) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kCount = 8192;  // 64 KB per rank, host ring
  const auto in = make_inputs(0xfa11, kRanks, kCount);

  sim::Scheduler sched;
  auto config = cluster_of(kRanks);
  config.fault_plan.cut(0, us(5));  // node0 East dies mid-collective
  api::Runtime rt(sched, config);
  auto comm = Communicator::create(
      rt, CollConfig{.sync = {.deadline_ps = us(300), .max_attempts = 4},
                     .flag_timeout_ps = ms(50)});
  ASSERT_TRUE(comm.is_ok());
  auto bufs = load_inputs(rt, in, /*host=*/true);

  const auto st = run_allreduce(sched, comm.value(), bufs, kCount);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(st[r].is_ok()) << "rank " << r << ": " << st[r].to_string();
  }

  // The collective recovered the long way around the ring...
  EXPECT_FALSE(rt.cluster().cable_usable(0));
  EXPECT_GE(rt.cluster().failovers(), 1u);
  EXPECT_GE(comm.value().metrics().put_retries, 1u);

  // ...and the result is still bit-identical to the conventional stack.
  const auto expected = baseline_allreduce(kRanks, in);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(bitwise_equal(read_doubles(rt, bufs[r], 0, kCount),
                              expected[r]))
        << "rank " << r;
  }
}

TEST(Recovery, CollAllreduceSurfacesTimedOutWithoutFailover) {
  constexpr std::uint32_t kRanks = 2;
  constexpr std::uint64_t kCount = 8192;
  const auto in = make_inputs(0xdead, kRanks, kCount);

  sim::Scheduler sched;
  auto config = cluster_of(kRanks);
  config.fault_plan.cut(0, us(5));
  config.enable_failover = false;
  api::Runtime rt(sched, config);
  auto comm = Communicator::create(
      rt, CollConfig{.sync = {.deadline_ps = us(200), .max_attempts = 2},
                     .flag_timeout_ps = ms(2)});
  ASSERT_TRUE(comm.is_ok());
  auto bufs = load_inputs(rt, in, /*host=*/true);

  const auto st = run_allreduce(sched, comm.value(), bufs, kCount);

  // The whole point: the simulation ran dry (sched.run() returned) with
  // every rank holding a failure instead of wedging on a dead cable.
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    EXPECT_FALSE(st[r].is_ok()) << "rank " << r;
  }
  EXPECT_TRUE(st[0].code() == ErrorCode::kTimedOut ||
              st[1].code() == ErrorCode::kTimedOut);
  EXPECT_EQ(rt.cluster().failovers(), 0u);
  EXPECT_LE(sched.now(), ms(20));
}

// --- Determinism -------------------------------------------------------------

// One traced collective campaign under a link flap: allreduce on 4 ranks
// while cable 0 goes down for 100us. Returns the trace JSON.
std::string run_traced_campaign() {
  Trace::instance().clear();
  Trace::instance().enable();
  std::string json;
  {
    constexpr std::uint32_t kRanks = 4;
    constexpr std::uint64_t kCount = 8192;
    sim::Scheduler sched;
    auto config = cluster_of(kRanks);
    config.fault_plan.flap(0, us(5), us(100));
    api::Runtime rt(sched, config);
    auto comm = Communicator::create(
        rt, CollConfig{.sync = {.deadline_ps = us(300), .max_attempts = 4},
                       .flag_timeout_ps = ms(50)});
    EXPECT_TRUE(comm.is_ok());
    auto bufs =
        load_inputs(rt, make_inputs(0x7ace, kRanks, kCount), /*host=*/true);
    const auto st = run_allreduce(sched, comm.value(), bufs, kCount);
    for (const Status& s : st) EXPECT_TRUE(s.is_ok()) << s.to_string();
    json = Trace::instance().to_json();
  }
  Trace::instance().disable();
  Trace::instance().clear();
  return json;
}

TEST(Determinism, CollectiveCampaignUnderFaultsReplaysIdentically) {
  const std::string first = run_traced_campaign();
  const std::string second = run_traced_campaign();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- Randomized sweep (ctest label: soak) ------------------------------------

TEST(Soak, RandomizedAllreduceSweepMatchesBaseline) {
  Rng rng(20260806);
  for (int iter = 0; iter < 8; ++iter) {
    const std::uint32_t n = 2u << rng.next_below(3);  // 2, 4 or 8 ranks
    const std::uint64_t count = n * (1 + rng.next_below(512));
    const bool host = rng.next_below(2) == 0;
    SCOPED_TRACE("iter " + std::to_string(iter) + ": n=" + std::to_string(n) +
                 " count=" + std::to_string(count) +
                 (host ? " host" : " gpu"));
    const auto in = make_inputs(rng.next_u64(), n, count);

    sim::Scheduler sched;
    api::Runtime rt(sched, cluster_of(n));
    auto comm = Communicator::create(rt);
    ASSERT_TRUE(comm.is_ok());
    auto bufs = load_inputs(rt, in, host);
    const auto st = run_allreduce(sched, comm.value(), bufs, count);
    for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

    const auto expected = baseline_allreduce(n, in);
    for (std::uint32_t r = 0; r < n; ++r) {
      ASSERT_TRUE(bitwise_equal(read_doubles(rt, bufs[r], 0, count),
                                expected[r]))
          << "rank " << r;
    }
  }
}

TEST(Soak, ReduceScatterThenAllgatherEqualsTheFullSum) {
  Rng rng(4242);
  for (int iter = 0; iter < 4; ++iter) {
    const std::uint32_t n = 2u << rng.next_below(3);
    const std::uint64_t count = n * (8 + rng.next_below(256));
    SCOPED_TRACE("iter " + std::to_string(iter) + ": n=" + std::to_string(n) +
                 " count=" + std::to_string(count));
    const auto in = make_inputs(rng.next_u64(), n, count);

    sim::Scheduler sched;
    api::Runtime rt(sched, cluster_of(n));
    auto comm = Communicator::create(rt);
    ASSERT_TRUE(comm.is_ok());
    auto bufs = load_inputs(rt, in, /*host=*/true);

    std::vector<Status> st(n);
    for (std::uint32_t r = 0; r < n; ++r) {
      sim::spawn([](Communicator& c, api::Buffer b, std::uint32_t rank,
                    std::uint64_t cnt, Status& out) -> sim::Task<> {
        out = co_await c.reduce_scatter_sum(rank, b, 0, cnt);
        if (out.is_ok()) {
          out = co_await c.allgather(rank, b, 0, (cnt / c.ranks()) * 8);
        }
      }(comm.value(), bufs[r], r, count, st[r]));
    }
    sched.run();
    for (const Status& s : st) ASSERT_TRUE(s.is_ok()) << s.to_string();

    // Chunk c everywhere = the ring fold with first contributor c+1 (the
    // reduce-scatter order); every rank agrees bitwise.
    const std::uint64_t chunk = count / n;
    for (std::uint32_t c = 0; c < n; ++c) {
      const auto expected = ring_fold_reference(in, chunk, c, (c + 1) % n);
      for (std::uint32_t r = 0; r < n; ++r) {
        ASSERT_TRUE(bitwise_equal(
            read_doubles(rt, bufs[r], c * chunk * 8, chunk), expected))
            << "rank " << r << " chunk " << c;
      }
    }
  }
}

}  // namespace
}  // namespace tca::coll
