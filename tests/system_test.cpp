// System-level tests: concurrency, congestion, fairness, full-duplex
// behaviour, and bit-for-bit determinism of the simulator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/sub_cluster.h"

namespace tca::fabric {
namespace {

using driver::Peach2Driver;
using peach2::DmaDescriptor;
using peach2::DmaDirection;
using units::us;

SubClusterConfig cluster_config(std::uint32_t nodes) {
  return SubClusterConfig{
      .spec = fabric::TopologySpec::ring(nodes),
      .node_config = {.gpu_count = 2,
                      .host_backing_bytes = 16 << 20,
                      .gpu_backing_bytes = 4 << 20}};
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 53 + i * 7) & 0xff);
  }
  return v;
}

void stage_ram(SubCluster& tca, std::uint32_t node, std::uint8_t seed) {
  auto data = pattern(1 << 20, seed);
  tca.chip(node).internal_ram().write(0, data);
}

/// 255 x 4 KiB chained write from `src` to `dst`'s host; returns elapsed.
sim::Task<TimePs> chained_write(SubCluster& tca, std::uint32_t src,
                                std::uint32_t dst) {
  Peach2Driver& drv = tca.driver(src);
  std::vector<DmaDescriptor> chain;
  for (std::uint32_t i = 0; i < 255; ++i) {
    chain.push_back({.src = drv.internal_global((i * 4096) % (1 << 20)),
                     .dst = tca.global_host(dst, (i * 4096) % (1 << 20)),
                     .length = 4096,
                     .direction = DmaDirection::kWrite});
  }
  co_return co_await drv.run_chain(std::move(chain));
}

TEST(System, FullDuplexTransfersDoNotInterfere) {
  // Node0 -> node1 and node1 -> node0 simultaneously: separate cables and
  // full-duplex links mean each direction runs at full speed.
  TimePs solo = 0;
  {
    sim::Scheduler sched;
    SubCluster tca(sched, cluster_config(2));
    stage_ram(tca, 0, 1);
    auto t = chained_write(tca, 0, 1);
    sched.run();
    solo = t.result();
  }
  {
    sim::Scheduler sched;
    SubCluster tca(sched, cluster_config(2));
    stage_ram(tca, 0, 1);
    stage_ram(tca, 1, 2);
    auto t01 = chained_write(tca, 0, 1);
    auto t10 = chained_write(tca, 1, 0);
    sched.run();
    // Within 5% of the solo time in both directions.
    EXPECT_LT(t01.result(), solo * 105 / 100);
    EXPECT_LT(t10.result(), solo * 105 / 100);
  }
}

TEST(System, ConvergingFlowsShareTheBottleneckLink) {
  // In a 4-node ring, node1 -> node0 and node2 -> node0 (via node1's W
  // cable for one, direct for the other)... choose flows that share node0's
  // incoming W cable: node1->node0 goes West (1 hop); node2->node0 ties to
  // East per the tie-break, so use node3->node0 (East... ) — pick
  // node1->node0 and node2->node0 where node2 routes W through node1:
  // cw(2->0)=2, ccw=2 -> East through node3. Instead share the *N link* of
  // node0: flows from node1 (W) and node3 (E) both terminate in node0's
  // host through its single x8 slot link.
  TimePs solo = 0;
  {
    sim::Scheduler sched;
    SubCluster tca(sched, cluster_config(4));
    stage_ram(tca, 1, 1);
    auto t = chained_write(tca, 1, 0);
    sched.run();
    solo = t.result();
  }
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_config(4));
  stage_ram(tca, 1, 1);
  stage_ram(tca, 3, 2);
  auto a = chained_write(tca, 1, 0);
  auto b = chained_write(tca, 3, 0);
  sched.run();
  // Two flows into one x8 slot: each materially slower than solo, and
  // neither starved (fair share within 35%).
  EXPECT_GT(a.result(), solo * 115 / 100);
  EXPECT_GT(b.result(), solo * 115 / 100);
  const double ratio = static_cast<double>(a.result()) /
                       static_cast<double>(b.result());
  EXPECT_GT(ratio, 0.65);
  EXPECT_LT(ratio, 1.55);
}

TEST(System, ForwardedTrafficAndLocalDmaCoexist) {
  // Node1 relays node0->node2 traffic while running its own local DMA:
  // both complete, data intact.
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_config(4));
  stage_ram(tca, 0, 3);
  stage_ram(tca, 1, 4);

  auto through = chained_write(tca, 0, 2);  // 2 hops eastward via node1
  Peach2Driver& drv1 = tca.driver(1);
  std::vector<DmaDescriptor> local;
  for (std::uint32_t i = 0; i < 128; ++i) {
    local.push_back({.src = drv1.internal_global(i * 4096),
                     .dst = drv1.host_buffer_global(i * 4096),
                     .length = 4096,
                     .direction = DmaDirection::kWrite});
  }
  auto own = drv1.run_chain(std::move(local));
  sched.run();
  ASSERT_TRUE(through.done() && own.done());

  std::vector<std::byte> got(4096), want(4096);
  tca.node(2).cpu().read_host(0, got);
  tca.chip(0).internal_ram().read(0, want);
  EXPECT_EQ(got, want);
  tca.node(1).cpu().read_host(0, got);
  tca.chip(1).internal_ram().read(0, want);
  EXPECT_EQ(got, want);
}

TEST(System, AllNodesDmaSimultaneouslyToNeighbors) {
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_config(8));
  std::vector<sim::Task<TimePs>> tasks;
  for (std::uint32_t n = 0; n < 8; ++n) {
    stage_ram(tca, n, static_cast<std::uint8_t>(10 + n));
    tasks.push_back(chained_write(tca, n, (n + 1) % 8));
  }
  sched.run();
  for (std::uint32_t n = 0; n < 8; ++n) {
    ASSERT_TRUE(tasks[n].done());
    // Neighbor flows use disjoint cables: near-solo bandwidth everywhere.
    const double gbps =
        units::gbytes_per_second(255ull * 4096, tasks[n].result());
    EXPECT_GT(gbps, 3.1) << "node " << n;
    // Data intact at each destination.
    std::vector<std::byte> got(4096), want(4096);
    tca.node((n + 1) % 8).cpu().read_host(0, got);
    tca.chip(n).internal_ram().read(0, want);
    EXPECT_EQ(got, want) << "node " << n;
  }
}

TEST(System, SimulationIsDeterministic) {
  auto run_once = [] {
    sim::Scheduler sched;
    SubCluster tca(sched, cluster_config(4));
    stage_ram(tca, 0, 1);
    stage_ram(tca, 2, 2);
    auto a = chained_write(tca, 0, 1);
    auto b = chained_write(tca, 2, 3);
    auto pio = tca.driver(1).pio_store_u32(tca.global_host(3, 0x100), 77);
    sched.run();
    return std::tuple(a.result(), b.result(), sched.now(),
                      sched.events_processed());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

TEST(System, BackToBackChainsFromOneDriverSerialize) {
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_config(2));
  stage_ram(tca, 0, 5);
  Peach2Driver& drv = tca.driver(0);

  auto seq = [](SubCluster& t, Peach2Driver& d) -> sim::Task<TimePs> {
    const TimePs t0 = t.node(0).cpu().scheduler().now();
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<DmaDescriptor> chain{
          DmaDescriptor{.src = d.internal_global(0),
                        .dst = t.global_host(1, 0),
                        .length = 4096,
                        .direction = DmaDirection::kWrite}};
      co_await d.run_chain(std::move(chain));
    }
    co_return t.node(0).cpu().scheduler().now() - t0;
  }(tca, drv);
  sched.run();
  ASSERT_TRUE(seq.done());
  EXPECT_EQ(tca.chip(0).dmac().chains_completed(), 4u);
}

TEST(System, PioAndDmaInterleaveSafely) {
  // PIO stores issued while a DMA chain is in flight arrive intact and do
  // not corrupt the chain.
  sim::Scheduler sched;
  SubCluster tca(sched, cluster_config(2));
  stage_ram(tca, 0, 6);

  auto dma = chained_write(tca, 0, 1);
  std::vector<sim::Task<>> stores;
  for (std::uint32_t i = 0; i < 16; ++i) {
    stores.push_back(tca.driver(0).pio_store_u32(
        tca.global_host(1, (2 << 20) + i * 64), 0xBEE0 + i));
  }
  sched.run();
  ASSERT_TRUE(dma.done());

  for (std::uint32_t i = 0; i < 16; ++i) {
    std::uint32_t got = 0;
    tca.node(1).cpu().read_host((2 << 20) + i * 64,
                                std::as_writable_bytes(std::span(&got, 1)));
    EXPECT_EQ(got, 0xBEE0 + i);
  }
  std::vector<std::byte> got(4096), want(4096);
  tca.node(1).cpu().read_host(0, got);
  tca.chip(0).internal_ram().read(0, want);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace tca::fabric
