// Section IV-A theoretical-peak reproduction: PCIe Gen2 x8 efficiency as a
// function of MaxPayloadSize, including the paper's exact formula
//
//   4 GB/s x 256 / (256 + 16 + 2 + 4 + 1 + 1) = 3.66 GB/s
//
// and a measured link sweep demonstrating the simulator's wire model
// matches the analytic value for every payload size.
#include <functional>

#include "bench/bench_util.h"
#include "pcie/link.h"
#include "pcie/tlp.h"

using namespace tca;

namespace {

/// Measures sustained throughput of a saturated link at a given payload.
double measure_link(std::uint32_t payload) {
  sim::Scheduler sched;
  pcie::PcieLink link(sched, {.gen = 2, .lanes = 8});

  struct Sink : pcie::TlpSink {
    void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override {
      port.release_rx(tlp.wire_bytes());
    }
  } sink;
  link.end_b().set_sink(&sink);

  constexpr std::uint64_t kTotal = 4 << 20;
  std::uint64_t sent = 0;
  std::vector<std::byte> data(payload, std::byte{0xA5});
  std::function<void()> pump = [&] {
    while (sent < kTotal) {
      // Build TLPs manually: the wire math must accept any payload size.
      pcie::Tlp tlp;
      tlp.type = pcie::TlpType::kMemWrite;
      tlp.address = sent;
      tlp.length = payload;
      tlp.payload = data;
      if (!link.end_a().can_send(tlp)) return;
      link.end_a().send(std::move(tlp));
      sent += payload;
    }
  };
  link.end_a().set_tx_ready(pump);
  pump();
  sched.run();
  return units::gbytes_per_second(kTotal, sched.now());
}

}  // namespace

int main() {
  bench::ShapeCheck check;
  const std::vector<std::uint32_t> payloads = {64, 128, 256, 512, 1024};

  TablePrinter table({"MaxPayload", "Analytic peak", "Measured",
                      "Efficiency", "(Gbytes/s)"});
  double measured_256 = 0;
  for (std::uint32_t p : payloads) {
    const double analytic =
        4.0 * p / (p + calib::kTlpWithDataOverheadBytes);
    const double measured = measure_link(p);
    if (p == 256) measured_256 = measured;
    table.add_row({units::format_size(p), bench::fmt_gbps(analytic),
                   bench::fmt_gbps(measured),
                   TablePrinter::cell(100.0 * p /
                                          (p + calib::kTlpWithDataOverheadBytes),
                                      1) +
                       "%",
                   ""});
    check.expect_near(measured, analytic, 0.01,
                      "measured matches analytic at MPS " +
                          units::format_size(p));
  }

  print_section(
      "Theoretical peak: Gen2 x8 efficiency vs MaxPayloadSize (paper "
      "formula)");
  table.print();
  std::printf("\nPaper (MPS=256): 4 GB/s x 256/280 = 3.66 Gbytes/s; the DMA "
              "engine\nreaches 93%% of this (see bench_fig7).\n");

  check.expect_near(measured_256, 3.657, 0.01,
                    "MPS=256 peak equals the paper's 3.66 GB/s");
  return check.finish();
}
