// Collective-library headline: tca::coll ring allreduce versus the
// conventional stack (cudaMemcpy D2H -> MPI/IB host ring -> cudaMemcpy H2D)
// across message sizes and ring sizes, GPU-resident on both sides.
//
// Reproduced shape:
//   * Small vectors: the conventional stack amortizes its two cudaMemcpy
//     sweeps poorly, but the TCA ring pays per-segment doorbells and
//     staging, so the stacks are close (the paper's PIO path is for
//     latency, not reductions).
//   * Bulk vectors: the communicator's host-carried relay sends every ring
//     step after the first from the previous step's fold at wire rate,
//     while the dual-rail IB baseline still pays the full-vector D2H/H2D
//     bracket — tca::coll wins from ~256 KB up and must win at >= 1 MB on
//     the 8-node ring.
//   * Both stacks apply the identical ring fold order, so every sweep point
//     is verified bitwise identical before its timing counts.
//
// --json PATH writes the sweep for scripts/bench_perf.sh (BENCH_coll.json);
// --smoke shrinks the sweep to a sub-second tripwire for scripts/check.sh.
#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/collectives.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "bench/bench_util.h"
#include "coll/communicator.h"

using namespace tca;

namespace {

std::vector<std::vector<double>> make_inputs(std::uint32_t ranks,
                                             std::uint64_t count) {
  Rng rng(0xc0111ec7 + ranks);
  std::vector<std::vector<double>> in(ranks);
  for (auto& v : in) {
    v.resize(count);
    for (double& x : v) x = rng.next_double() * 2.0 - 1.0;
  }
  return in;
}

struct Point {
  TimePs tca_ps = 0;
  TimePs mpi_ps = 0;
  bool bitwise = false;
};

/// One sweep point, fresh rigs on both sides so no queue state leaks
/// between sizes.
Point run_point(std::uint32_t ranks, std::uint64_t count) {
  const auto in = make_inputs(ranks, count);
  Point p;

  // --- tca::coll: GPU-resident ring allreduce ------------------------------
  std::vector<std::vector<double>> tca_out(ranks);
  {
    sim::Scheduler sched;
    api::Runtime rt(sched,
                    api::TcaConfig{.spec = fabric::TopologySpec::ring(ranks),
                                   .node_config = {.gpu_count = 2,
                                                   .host_backing_bytes =
                                                       64ull << 20,
                                                   .gpu_backing_bytes =
                                                       64ull << 20}});
    auto comm = coll::Communicator::create(rt);
    TCA_ASSERT(comm.is_ok());
    std::vector<api::Buffer> bufs(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      bufs[r] = rt.alloc_gpu(r, 0, count * sizeof(double)).value();
      rt.write(bufs[r], 0, std::as_bytes(std::span(in[r])));
    }
    const TimePs t0 = sched.now();
    std::vector<Status> st(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      sim::spawn([](coll::Communicator& c, api::Buffer b, std::uint32_t rank,
                    std::uint64_t n, Status& out) -> sim::Task<> {
        out = co_await c.allreduce_sum(rank, b, 0, n);
      }(comm.value(), bufs[r], r, count, st[r]));
    }
    sched.run();
    p.tca_ps = sched.now() - t0;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      TCA_ASSERT(st[r].is_ok());
      tca_out[r].resize(count);
      rt.read(bufs[r], 0, std::as_writable_bytes(std::span(tca_out[r])));
    }
  }

  // --- Conventional stack: D2H + MPI/IB host ring + H2D ---------------------
  std::vector<std::vector<double>> mpi_out = in;
  {
    sim::Scheduler sched;
    std::vector<std::unique_ptr<node::ComputeNode>> nodes;
    for (std::uint32_t i = 0; i < ranks; ++i) {
      nodes.push_back(std::make_unique<node::ComputeNode>(
          sched, static_cast<int>(i),
          node::NodeConfig{.gpu_count = 2,
                           .host_backing_bytes = 64ull << 20,
                           .gpu_backing_bytes = 64ull << 20}));
    }
    std::vector<node::ComputeNode*> ptrs;
    for (auto& n : nodes) ptrs.push_back(n.get());
    baseline::IbFabric fabric(sched, ptrs);
    baseline::MpiLite mpi(sched, fabric);
    baseline::Collectives coll(mpi, ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      nodes[r]->gpu(0).poke(0, std::as_bytes(std::span(mpi_out[r])));
    }
    const TimePs t0 = sched.now();
    for (std::uint32_t r = 0; r < ranks; ++r) {
      sim::spawn([](baseline::Collectives& c, node::ComputeNode& n,
                    std::uint32_t rank, std::span<double> d) -> sim::Task<> {
        co_await n.gpu(0).memcpy_d2h(0, std::as_writable_bytes(d));
        co_await c.allreduce_sum(rank, d);
        co_await n.gpu(0).memcpy_h2d(std::as_bytes(d), 0);
      }(coll, *nodes[r], r, std::span(mpi_out[r])));
    }
    sched.run();
    p.mpi_ps = sched.now() - t0;
  }

  p.bitwise = true;
  for (std::uint32_t r = 0; r < ranks && p.bitwise; ++r) {
    p.bitwise = std::memcmp(tca_out[r].data(), mpi_out[r].data(),
                            count * sizeof(double)) == 0;
  }
  return p;
}

int run(bool smoke, const std::string& json_path) {
  bench::ShapeCheck check;
  const std::vector<std::uint32_t> rings = smoke
                                               ? std::vector<std::uint32_t>{8}
                                               : std::vector<std::uint32_t>{4,
                                                                            8};
  const std::vector<std::uint64_t> sizes =  // total vector bytes
      smoke ? std::vector<std::uint64_t>{64ull << 10, 1ull << 20}
            : std::vector<std::uint64_t>{8ull << 10, 64ull << 10,
                                         256ull << 10, 1ull << 20,
                                         4ull << 20};

  struct Row {
    std::uint32_t ranks;
    std::uint64_t bytes;
    Point p;
  };
  std::vector<Row> rows;
  bool all_bitwise = true;
  double speedup_1m_8 = 0;

  for (std::uint32_t ranks : rings) {
    TablePrinter table({"Size", "tca::coll", "MPI/IB 3-copy", "speedup",
                        "coll GB/s", "bitwise"});
    for (std::uint64_t bytes : sizes) {
      const std::uint64_t count = bytes / sizeof(double);
      const Point p = run_point(ranks, count);
      all_bitwise = all_bitwise && p.bitwise;
      const double speedup =
          static_cast<double>(p.mpi_ps) / static_cast<double>(p.tca_ps);
      if (ranks == 8 && bytes == (1ull << 20)) speedup_1m_8 = speedup;
      table.add_row({units::format_size(bytes),
                     units::format_time(p.tca_ps),
                     units::format_time(p.mpi_ps),
                     TablePrinter::cell(speedup, 2) + "x",
                     bench::fmt_gbps(units::gbytes_per_second(bytes, p.tca_ps)),
                     p.bitwise ? "OK" : "MISMATCH"});
      rows.push_back({ranks, bytes, p});
    }
    print_section("GPU-resident ring allreduce, " + std::to_string(ranks) +
                  "-node ring (vector size -> wall time per allreduce)");
    table.print();
  }

  std::printf(
      "\nThe communicator stages each rank's first GPU chunk D2H once and\n"
      "relays every later ring step from the host-carried fold, so bulk\n"
      "vectors move at wire rate; the conventional stack brackets the host\n"
      "ring with two full-vector cudaMemcpy sweeps at every size.\n");

  check.expect(all_bitwise,
               "every sweep point: tca::coll == MPI/IB baseline bitwise");
  check.expect(speedup_1m_8 > 1.0,
               "1 MiB on the 8-node ring: tca::coll beats the conventional "
               "stack (" +
                   TablePrinter::cell(speedup_1m_8, 2) + "x)");
  if (!smoke) {
    // The crossover lives between the smallest and the headline size:
    // the conventional stack may win the 8 KiB point, never the 1 MiB one.
    double worst_big = 1e9;
    for (const Row& r : rows) {
      if (r.bytes >= (1ull << 20)) {
        worst_big = std::min(worst_big, static_cast<double>(r.p.mpi_ps) /
                                            static_cast<double>(r.p.tca_ps));
      }
    }
    check.expect(worst_big > 1.0,
                 ">= 1 MiB: tca::coll wins on every ring size");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    check.expect(f != nullptr, "write " + json_path);
    if (f != nullptr) {
      // Smallest 8-node size from which tca::coll stays ahead — the
      // crossover the sweep exists to locate.
      std::uint64_t crossover = 0;
      for (const Row& r : rows) {
        if (r.ranks != 8) continue;
        if (r.p.mpi_ps > r.p.tca_ps) {
          if (crossover == 0) crossover = r.bytes;
        } else {
          crossover = 0;
        }
      }
      std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
      std::fprintf(f, "  \"bitwise_match\": %s,\n",
                   all_bitwise ? "true" : "false");
      std::fprintf(f, "  \"crossover_bytes_8node\": %llu,\n",
                   static_cast<unsigned long long>(crossover));
      std::fprintf(f, "  \"sweep\": [\n");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"nodes\": %u, \"bytes\": %llu, \"coll_ps\": %lld, "
            "\"mpi_ps\": %lld, \"speedup\": %.3f}%s\n",
            r.ranks, static_cast<unsigned long long>(r.bytes),
            static_cast<long long>(r.p.tca_ps),
            static_cast<long long>(r.p.mpi_ps),
            static_cast<double>(r.p.mpi_ps) / static_cast<double>(r.p.tca_ps),
            i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  }
  return check.finish();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return run(smoke, json_path);
}
