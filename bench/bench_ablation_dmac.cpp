// Ablation (Section IV-B2): two-phase DMAC vs the redesigned pipelined DMAC.
//
// "In the current DMAC ... in order to send the data in a local node to a
//  remote node, two phase operations are required. ... However, since this
//  procedure seriously impacts the performance, we are developing a new
//  DMAC, which operates both the read request from the memory on the local
//  node and the write request to the memory on the remote node
//  simultaneously in a pipeline manner."
//
// This bench quantifies exactly that design choice: host(A) -> host(B)
// transfers staged through internal memory (read chain + write chain) vs a
// single pipelined descriptor.
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

namespace {

TimePs run_two_phase(DmaRig& rig, std::uint32_t size) {
  driver::Peach2Driver& drv = rig.cluster.driver(0);
  const TimePs t0 = rig.sched.now();
  // Phase 1: host -> internal RAM (DMA read).
  rig.run(0, {DmaDescriptor{.src = drv.host_buffer_global(0),
                            .dst = drv.internal_global(0),
                            .length = size,
                            .direction = DmaDirection::kRead}});
  // Phase 2: internal RAM -> remote host (DMA write).
  rig.run(0, {DmaDescriptor{.src = drv.internal_global(0),
                            .dst = rig.cluster.global_host(1, 0),
                            .length = size,
                            .direction = DmaDirection::kWrite}});
  return rig.sched.now() - t0;
}

TimePs run_pipelined(DmaRig& rig, std::uint32_t size) {
  driver::Peach2Driver& drv = rig.cluster.driver(0);
  const TimePs t0 = rig.sched.now();
  rig.run(0, {DmaDescriptor{.src = drv.host_buffer_global(0),
                            .dst = rig.cluster.global_host(1, 0),
                            .length = size,
                            .direction = DmaDirection::kPipelined}});
  return rig.sched.now() - t0;
}

}  // namespace

int main() {
  bench::ShapeCheck check;
  DmaRig rig;

  const std::vector<std::uint32_t> sizes = {4096,      16 << 10, 64 << 10,
                                            256 << 10, 1 << 20};
  TablePrinter table({"Size", "Two-phase", "Pipelined", "Speedup",
                      "Two-phase GB/s", "Pipelined GB/s"});
  double speedup_64k = 0, speedup_1m = 0;

  for (std::uint32_t size : sizes) {
    const TimePs two = run_two_phase(rig, size);
    const TimePs pipe = run_pipelined(rig, size);
    const double speedup = static_cast<double>(two) /
                           static_cast<double>(pipe);
    table.add_row({units::format_size(size), units::format_time(two),
                   units::format_time(pipe),
                   TablePrinter::cell(speedup, 2) + "x",
                   bench::fmt_gbps(units::gbytes_per_second(size, two)),
                   bench::fmt_gbps(units::gbytes_per_second(size, pipe))});
    if (size == (64 << 10)) speedup_64k = speedup;
    if (size == (1 << 20)) speedup_1m = speedup;
  }

  print_section(
      "Ablation: two-phase DMAC vs pipelined DMAC (node A host -> node B "
      "host)");
  table.print();
  std::printf("\nThe pipelined engine needs one descriptor (one doorbell + "
              "one interrupt)\nand overlaps local reads with remote writes; "
              "the two-phase engine staged\neverything through the internal "
              "packet RAM.\n");

  check.expect(speedup_64k > 1.4,
               "pipelined DMAC >1.4x over two-phase at 64 KiB");
  check.expect(speedup_1m > 1.6,
               "pipelined DMAC approaches 2x at 1 MiB (full overlap)");
  return check.finish();
}
