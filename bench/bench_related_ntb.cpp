// Related-work comparison (Section V): PEACH2/PEARL vs a non-transparent
// bridge (NTB).
//
// The paper's argument is qualitative; this bench makes it measurable:
//   * latency: an NTB write crosses one translation stage, so raw latency
//     is comparable to PEACH2's PIO path;
//   * scalability: an NTB joins exactly two hosts, PEACH2 routes a 16-node
//     sub-cluster;
//   * robustness: dropping the inter-node link wedges an NTB host until
//     reboot, while "the link state with the other node has no impact on
//     the connection between the host and the PEACH2 chip".
#include "baseline/ntb.h"
#include "bench/bench_util.h"

using namespace tca;

namespace {

double ntb_write_latency_ns(sim::Scheduler& sched, baseline::NtbBridge& ntb,
                            node::ComputeNode& src, node::ComputeNode& dst,
                            std::uint32_t value) {
  std::uint32_t zero = 0;
  dst.cpu().write_host(0x900, std::as_bytes(std::span(&zero, 1)));
  auto poll = dst.cpu().poll_host_until_change(0x900, 0);
  const TimePs t0 = sched.now();
  std::array<std::byte, 4> data;
  std::memcpy(data.data(), &value, 4);
  auto store = src.cpu().mmio_store(ntb.config().aperture_base + 0x900, data);
  sched.run();
  return units::to_ns(poll.result() - t0);
}

}  // namespace

int main() {
  bench::ShapeCheck check;

  // --- NTB pair -------------------------------------------------------------
  sim::Scheduler ntb_sched;
  node::ComputeNode na(ntb_sched, 0,
                       {.gpu_count = 0, .host_backing_bytes = 8 << 20});
  node::ComputeNode nb(ntb_sched, 1,
                       {.gpu_count = 0, .host_backing_bytes = 8 << 20});
  baseline::NtbBridge ntb(ntb_sched, na, nb);
  const double ntb_ns = ntb_write_latency_ns(ntb_sched, ntb, na, nb, 7);

  // --- PEACH2 pair ------------------------------------------------------------
  bench::DmaRig rig;
  auto& tca = rig.cluster;
  std::uint32_t zero = 0;
  tca.node(1).cpu().write_host(0x900, std::as_bytes(std::span(&zero, 1)));
  auto poll = tca.node(1).cpu().poll_host_until_change(0x900, 0);
  const TimePs t0 = rig.sched.now();
  auto store = tca.driver(0).pio_store_u32(tca.global_host(1, 0x900), 7);
  rig.sched.run();
  const double peach2_ns = units::to_ns(poll.result() - t0);

  // --- Robustness under link loss ----------------------------------------------
  ntb.set_link_up(false);
  std::array<std::byte, 4> probe{};
  auto doomed = na.cpu().mmio_store(ntb.config().aperture_base, probe);
  ntb_sched.run();
  const bool ntb_wedged = ntb.hung(0);

  tca.set_fabric_up(false);
  auto held = tca.driver(0).pio_store_u32(tca.global_host(1, 0xa00), 9);
  rig.sched.run_for(units::us(50));
  auto id_read = tca.driver(0).read_register(peach2::regs::kChipId);
  rig.sched.run_for(units::us(50));
  const bool peach2_host_ok =
      id_read.done() && id_read.result() == peach2::regs::kChipIdValue;
  tca.set_fabric_up(true);
  rig.sched.run();
  std::uint32_t recovered = 0;
  tca.node(1).cpu().read_host(0xa00,
                              std::as_writable_bytes(std::span(&recovered, 1)));

  TablePrinter table({"Property", "NTB", "PEACH2 (TCA)"});
  table.add_row({"Adjacent-node write latency",
                 TablePrinter::cell(ntb_ns, 0) + " ns",
                 TablePrinter::cell(peach2_ns, 0) + " ns"});
  table.add_row({"Nodes reachable", "2 (point-to-point)",
                 "up to 16 (routed sub-cluster)"});
  table.add_row({"Standardized behaviour", "no (vendor-specific)",
                 "plain PCIe EPs per port"});
  table.add_row({"Peer link loss", ntb_wedged ? "host wedged until reboot"
                                              : "(unexpected)",
                 peach2_host_ok ? "host-chip link unaffected"
                                : "(unexpected)"});
  table.add_row({"Traffic during outage", "lost (machine check)",
                 recovered == 9 ? "held and delivered after relink"
                                : "(unexpected)"});

  print_section("Section V: PEACH2 vs non-transparent bridge (NTB)");
  table.print();

  check.expect(ntb_ns < 1200 && peach2_ns < 1000,
               "both give sub-microsecond-class adjacent-node writes");
  check.expect(ntb_wedged, "NTB: disconnection wedges the host (reboot)");
  check.expect(peach2_host_ok,
               "PEACH2: host-chip connection survives fabric loss");
  check.expect(recovered == 9,
               "PEACH2: held TLP delivered after the link returns");
  return check.finish();
}
