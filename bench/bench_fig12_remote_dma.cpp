// Figure 12 reproduction: data size vs bandwidth from PEACH2 on node A to
// the CPU/GPU on the adjacent node B (DMA write, 255 chained requests),
// compared against the in-node curves of Figure 7.
//
// Paper observations reproduced:
//   * Remote CPU bandwidth drops for small sizes "due to the latency for
//     transfer between PEACH2" but at 4 KiB is approximately the same as
//     within a node.
//   * Remote GPU bandwidth is approximately the same as within a node at
//     all sizes (the GPU's deep request queue absorbs posted writes).
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDirection;

int main() {
  bench::ShapeCheck check;
  DmaRig rig;
  driver::Peach2Driver& drv = rig.cluster.driver(0);

  const std::vector<std::uint32_t> sizes = {16,  32,  64,   128,  256,
                                            512, 1024, 2048, 4096};
  constexpr std::uint32_t kBurst = 255;

  TablePrinter table({"Size", "CPU local", "CPU remote", "GPU local",
                      "GPU remote", "(Gbytes/s)"});
  double cpu_local_4k = 0, cpu_remote_4k = 0;
  double cpu_local_64 = 0, cpu_remote_64 = 0;
  double gpu_ratio_min = 1e9, gpu_ratio_max = 0;

  for (std::uint32_t size : sizes) {
    const std::uint64_t total = static_cast<std::uint64_t>(kBurst) * size;
    const double cpu_local = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         drv.host_buffer_global(0))));
    const double cpu_remote = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         rig.cluster.global_host(1, 0))));
    const double gpu_local = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         drv.gpu_global(0, 0))));
    const double gpu_remote = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         rig.cluster.global_gpu(1, 0, 0))));
    table.add_row({units::format_size(size), bench::fmt_gbps(cpu_local),
                   bench::fmt_gbps(cpu_remote), bench::fmt_gbps(gpu_local),
                   bench::fmt_gbps(gpu_remote), ""});
    if (size == 4096) {
      cpu_local_4k = cpu_local;
      cpu_remote_4k = cpu_remote;
    }
    if (size == 64) {
      cpu_local_64 = cpu_local;
      cpu_remote_64 = cpu_remote;
    }
    const double gr = gpu_remote / gpu_local;
    gpu_ratio_min = std::min(gpu_ratio_min, gr);
    gpu_ratio_max = std::max(gpu_ratio_max, gr);
  }

  print_section(
      "Figure 12: size vs bandwidth to CPU/GPU on the adjacent node "
      "(DMA write x255)");
  table.print();

  check.expect_ratio(cpu_remote_64, cpu_local_64, 0.05, 0.7,
                     "small remote CPU writes degraded by inter-PEACH2 "
                     "latency");
  check.expect_ratio(cpu_remote_4k, cpu_local_4k, 0.9, 1.02,
                     "4 KiB remote CPU bandwidth ~= in-node bandwidth");
  check.expect(gpu_ratio_min > 0.93 && gpu_ratio_max < 1.07,
               "remote GPU bandwidth ~= in-node GPU bandwidth at all sizes");
  return check.finish();
}
