// Extension bench: PEARL link reliability under injected bit errors.
//
// PEARL stands for "PCI Express Adaptive and *Reliable* Link" — the link
// technology descends from the dependable-embedded-systems PEACH1 work
// (reference [5]). This bench injects bit errors on the inter-node cables
// and shows the data-link-layer replay keeping every transfer correct while
// bandwidth degrades gracefully with the error rate.
#include "bench/bench_util.h"

using namespace tca;
using peach2::DmaDirection;

namespace {

struct Run {
  double gbps;
  std::uint64_t replays;
  bool data_ok;
};

Run run_with_ber(double ber) {
  sim::Scheduler sched;
  fabric::SubCluster tca(
      sched, fabric::SubClusterConfig{
                 .spec = fabric::TopologySpec::ring(2),
                 .node_config = {.gpu_count = 2,
                                 .host_backing_bytes = 64ull << 20,
                                 .gpu_backing_bytes = 8ull << 20},
                 .cable_bit_error_rate = ber});
  driver::Peach2Driver& drv = tca.driver(0);
  Rng rng(3);
  std::vector<std::byte> fill(1 << 20);
  rng.fill(fill);
  tca.chip(0).internal_ram().write(0, fill);

  std::vector<peach2::DmaDescriptor> chain;
  for (std::uint32_t i = 0; i < 255; ++i) {
    chain.push_back({.src = drv.internal_global((i * 4096ull) % (1 << 20)),
                     .dst = tca.global_host(1, (i * 4096ull) % (1 << 20)),
                     .length = 4096,
                     .direction = DmaDirection::kWrite});
  }
  auto t = drv.run_chain(std::move(chain));
  sched.run();

  // Verify the final descriptor's data landed intact.
  std::vector<std::byte> got(4096), want(4096);
  tca.node(1).cpu().read_host((254 * 4096ull) % (1 << 20), got);
  tca.chip(0).internal_ram().read((254 * 4096ull) % (1 << 20), want);

  // Count replays across both cables, both directions.
  std::uint64_t replays = 0;
  // Cables are not directly exposed; replays show up on the chips' egress
  // ports' links — approximate via the known cable between the chips by
  // probing the east egress... simplest: the SubCluster stats don't track
  // link replays, so re-derive from the total wire traffic is overkill;
  // instead expose through the chip's East port link config? The bench
  // tracks correctness + bandwidth; replays are sampled from a standalone
  // link below.
  (void)replays;

  return Run{units::gbytes_per_second(255ull * 4096, t.result()), 0,
             got == want};
}

/// Standalone saturated link at the given BER: exact replay counts.
std::pair<double, std::uint64_t> link_sweep(double ber) {
  sim::Scheduler sched;
  pcie::PcieLink link(sched, {.gen = 2,
                              .lanes = 8,
                              .bit_error_rate = ber,
                              .error_seed = 99});
  struct Sink : pcie::TlpSink {
    void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override {
      port.release_rx(tlp.wire_bytes());
    }
  } sink;
  link.end_b().set_sink(&sink);
  constexpr std::uint64_t kTotal = 4 << 20;
  std::uint64_t sent = 0;
  std::vector<std::byte> payload(256, std::byte{0x77});
  std::function<void()> pump = [&] {
    while (sent < kTotal) {
      pcie::Tlp tlp;
      tlp.type = pcie::TlpType::kMemWrite;
      tlp.length = 256;
      tlp.payload = payload;
      if (!link.end_a().can_send(tlp)) return;
      link.end_a().send(std::move(tlp));
      sent += 256;
    }
  };
  link.end_a().set_tx_ready(pump);
  pump();
  sched.run();
  return {units::gbytes_per_second(kTotal, sched.now()),
          link.end_a().replays()};
}

}  // namespace

int main() {
  bench::ShapeCheck check;

  TablePrinter table({"Bit error rate", "Link BW", "Replays/16Ki TLPs",
                      "End-to-end DMA BW", "Data intact"});
  const std::vector<double> bers = {0, 1e-9, 1e-7, 1e-6, 1e-5};
  double bw_clean = 0, bw_noisy = 0;
  for (double ber : bers) {
    const auto [link_bw, replays] = link_sweep(ber);
    const Run dma = run_with_ber(ber);
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", ber);
    table.add_row({ber == 0 ? "0" : label,
                   TablePrinter::cell(link_bw, 3) + " GB/s",
                   TablePrinter::cell(replays),
                   TablePrinter::cell(dma.gbps, 3) + " GB/s",
                   dma.data_ok ? "yes" : "NO"});
    check.expect(dma.data_ok, std::string("data intact at BER ") + label);
    if (ber == 0) bw_clean = link_bw;
    if (ber == 1e-5) bw_noisy = link_bw;
  }

  print_section(
      "Extension: PEARL reliability — bandwidth under injected bit errors");
  table.print();
  std::printf("\nReplay keeps the fabric lossless; each LCRC failure costs "
              "one TLP time\nplus the %s replay turnaround.\n",
              units::format_time(calib::kReplayDelayPs).c_str());

  check.expect(bw_noisy < bw_clean,
               "bandwidth degrades gracefully with the error rate");
  check.expect(bw_noisy > bw_clean * 0.8,
               "1e-5 BER costs only a few percent, not collapse");
  return check.finish();
}
