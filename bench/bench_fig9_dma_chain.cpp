// Figure 9 reproduction: number of DMA requests vs bandwidth at a fixed
// 4 KiB data size.
//
// Paper observations reproduced:
//   * 4 chained requests reach approximately 70% of the maximum.
//   * The curve saturates toward 3.3 GB/s at 255 requests — amortizing the
//     fixed doorbell + descriptor-table-fetch + interrupt cost.
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDirection;

int main() {
  bench::ShapeCheck check;
  DmaRig rig;
  driver::Peach2Driver& drv = rig.cluster.driver(0);

  const std::vector<std::uint32_t> counts = {1,  2,  4,   8,   16,
                                             32, 64, 128, 255};
  constexpr std::uint32_t kSize = 4096;

  TablePrinter table({"Requests", "CPU write", "CPU read", "GPU write",
                      "(Gbytes/s)"});
  double cpu_w_4 = 0, cpu_w_255 = 0;

  for (std::uint32_t count : counts) {
    const std::uint64_t total = static_cast<std::uint64_t>(count) * kSize;
    const double cpu_w = rig.gbps(
        total, rig.run(0, rig.make_chain(count, kSize, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         drv.host_buffer_global(0))));
    const double cpu_r = rig.gbps(
        total, rig.run(0, rig.make_chain(count, kSize, DmaDirection::kRead,
                                         drv.host_buffer_global(0),
                                         drv.internal_global(0))));
    const double gpu_w = rig.gbps(
        total, rig.run(0, rig.make_chain(count, kSize, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         drv.gpu_global(0, 0))));
    table.add_row({TablePrinter::cell(std::uint64_t{count}),
                   bench::fmt_gbps(cpu_w), bench::fmt_gbps(cpu_r),
                   bench::fmt_gbps(gpu_w), ""});
    if (count == 4) cpu_w_4 = cpu_w;
    if (count == 255) cpu_w_255 = cpu_w;
  }

  print_section(
      "Figure 9: request count vs bandwidth at fixed 4 KiB (chaining DMA)");
  table.print();

  check.expect_ratio(cpu_w_4, cpu_w_255, 0.63, 0.77,
                     "4 requests reach ~70% of the 255-request maximum");
  check.expect_near(cpu_w_255, 3.3, 0.1,
                    "255 requests saturate at the paper's 3.3 GB/s");
  return check.finish();
}
