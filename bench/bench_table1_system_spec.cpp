// Table I reproduction: specifications of the HA-PACS base cluster.
//
// A spec table cannot be "measured", but its arithmetic can be verified:
// CPU peak = 2.6 GHz x 8 flops x 8 cores x 2 sockets = 332.8 GFlops,
// GPU peak = 4 x 665 = 2660 GFlops, total = 268 x (332.8 + 2660) = 802
// TFlops, PCIe lane budget 2 x 40 = 4 x16 GPUs + 2 x8 extras — and the
// simulator's node model is checked to match (4 GPUs, Gen2/Gen3 widths,
// dual-rail IB).
#include "bench/bench_util.h"
#include "fabric/hapacs_specs.h"

using namespace tca;
using fabric::specs::BaseCluster;

int main() {
  bench::ShapeCheck check;
  const BaseCluster spec;

  TablePrinter table({"Item", "Specification"});
  table.add_row({"CPU", spec.cpu});
  table.add_row({"  cache", spec.cpu_cache});
  table.add_row({"Memory", spec.host_memory});
  table.add_row({"Peak performance (CPU)",
                 TablePrinter::cell(spec.cpu_peak_gflops, 1) + " GFlops"});
  table.add_row({"GPU", spec.gpu});
  table.add_row({"  memory", spec.gpu_memory});
  table.add_row({"Peak performance (GPU)",
                 TablePrinter::cell(spec.gpu_peak_gflops, 0) + " GFlops"});
  table.add_row({"InfiniBand", spec.interconnect_nic});
  table.add_row({"Number of nodes",
                 TablePrinter::cell(std::uint64_t(spec.node_count))});
  table.add_row({"Storage", spec.storage});
  table.add_row({"Interconnect", spec.interconnect});
  table.add_row({"Total peak performance",
                 TablePrinter::cell(spec.total_peak_tflops, 0) + " TFlops"});
  table.add_row({"Number of racks",
                 TablePrinter::cell(std::uint64_t(spec.racks))});
  table.add_row({"Maximum power consumption",
                 TablePrinter::cell(std::uint64_t(spec.max_power_kw)) +
                     " kW"});

  print_section("Table I: specifications of the HA-PACS base cluster");
  table.print();

  // Arithmetic cross-checks.
  const double cpu_peak = spec.cpu_ghz * spec.flops_per_cycle *
                          spec.cores_per_socket * spec.sockets;
  check.expect_near(cpu_peak, spec.cpu_peak_gflops, 0.01,
                    "CPU peak = 2.6 GHz x 8 flops x 8 cores x 2 sockets");
  check.expect_near(spec.gpus_per_node * spec.gpu_peak_gflops_each,
                    spec.gpu_peak_gflops, 0.01,
                    "GPU peak = 4 x 665 GFlops (M2090)");
  const double total_tflops =
      spec.node_count * (cpu_peak + spec.gpu_peak_gflops) / 1000.0;
  check.expect_near(total_tflops, spec.total_peak_tflops, 1.0,
                    "total peak = 268 x (332.8 + 2660) GFlops ~= 802 TFlops");
  const double gflops_per_watt =
      spec.node_count * (cpu_peak + spec.gpu_peak_gflops) /
      (spec.max_power_kw * 1000.0);
  check.expect(gflops_per_watt > 1.0,
               "performance/power efficiency above 1 GFlops/W (paper: 1.04 "
               "on Green500 methodology)");
  check.expect(spec.gpus_per_node * spec.gpu_lanes + 2 * spec.nic_lanes <=
                   spec.sockets * spec.pcie_lanes_per_cpu,
               "PCIe budget: 4 x16 GPUs + 2 x8 extras fit in 2 x 40 lanes");

  // Simulator-model consistency.
  sim::Scheduler sched;
  node::ComputeNode model(sched, 0);
  check.expect(model.gpu_count() == spec.gpus_per_node,
               "node model carries four GPUs (Fig. 2)");
  check.expect(model.gpu(0).config().socket == 0 &&
                   model.gpu(2).config().socket == 1,
               "node model splits GPUs across sockets (Fig. 2)");
  return check.finish();
}
