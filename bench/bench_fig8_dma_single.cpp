// Figure 8 reproduction: single-descriptor DMA bandwidth vs data size.
//
// Paper observations reproduced:
//   * A single request is severely degraded versus 255 chained requests —
//     "retrieving the descriptor table is the dominant factor".
//   * Equal total bytes give equal bandwidth: a single 8 KiB request
//     performs like two chained 4 KiB requests (the Figure 9 cross-check).
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDirection;

int main() {
  bench::ShapeCheck check;
  DmaRig rig;
  driver::Peach2Driver& drv = rig.cluster.driver(0);

  const std::vector<std::uint32_t> sizes = {
      64,        256,       1024,      4096,      16 << 10,
      64 << 10,  256 << 10, 1 << 20};

  TablePrinter table({"Size", "CPU write", "CPU read", "GPU write",
                      "GPU read", "(Gbytes/s)"});
  double cpu_w_4k_single = 0;
  double cpu_w_8k_single = 0;

  for (std::uint32_t size : sizes) {
    const double cpu_w = rig.gbps(
        size, rig.run(0, rig.make_chain(1, size, DmaDirection::kWrite,
                                        drv.internal_global(0),
                                        drv.host_buffer_global(0),
                                        /*window=*/2 << 20)));
    const double cpu_r = rig.gbps(
        size, rig.run(0, rig.make_chain(1, size, DmaDirection::kRead,
                                        drv.host_buffer_global(0),
                                        drv.internal_global(0),
                                        /*window=*/2 << 20)));
    const double gpu_w = rig.gbps(
        size, rig.run(0, rig.make_chain(1, size, DmaDirection::kWrite,
                                        drv.internal_global(0),
                                        drv.gpu_global(0, 0),
                                        /*window=*/2 << 20)));
    const double gpu_r = rig.gbps(
        size, rig.run(0, rig.make_chain(1, size, DmaDirection::kRead,
                                        drv.gpu_global(0, 0),
                                        drv.internal_global(0),
                                        /*window=*/2 << 20)));
    table.add_row({units::format_size(size), bench::fmt_gbps(cpu_w),
                   bench::fmt_gbps(cpu_r), bench::fmt_gbps(gpu_w),
                   bench::fmt_gbps(gpu_r), ""});
    if (size == 4096) cpu_w_4k_single = cpu_w;
    if (size == 8192) cpu_w_8k_single = cpu_w;
  }
  // 8 KiB is not in the sweep above; measure it for the cross-check.
  cpu_w_8k_single = rig.gbps(
      8192, rig.run(0, rig.make_chain(1, 8192, DmaDirection::kWrite,
                                      drv.internal_global(0),
                                      drv.host_buffer_global(0),
                                      /*window=*/2 << 20)));
  const double cpu_w_2x4k = rig.gbps(
      2 * 4096, rig.run(0, rig.make_chain(2, 4096, DmaDirection::kWrite,
                                          drv.internal_global(0),
                                          drv.host_buffer_global(0))));
  const double cpu_w_255x4k = rig.gbps(
      255ull * 4096,
      rig.run(0, rig.make_chain(255, 4096, DmaDirection::kWrite,
                                drv.internal_global(0),
                                drv.host_buffer_global(0))));

  print_section("Figure 8: size vs bandwidth, single DMA request");
  table.print();
  std::printf("\nCross-check: 1 x 8 KiB = %.3f GB/s vs 2 x 4 KiB chained = "
              "%.3f GB/s\n", cpu_w_8k_single, cpu_w_2x4k);

  check.expect_ratio(cpu_w_4k_single, cpu_w_255x4k, 0.2, 0.5,
                     "single 4 KiB request severely degraded vs 255 chained");
  check.expect_ratio(cpu_w_8k_single, cpu_w_2x4k, 0.9, 1.1,
                     "equal total bytes -> equal bandwidth (1x8K ~ 2x4K)");
  return check.finish();
}
