// Section IV-B1 reproduction (Fig. 10 configuration): PIO transfer latency
// between adjacent PEACH2 chips.
//
// The paper attaches TWO PEACH2 boards to a single node so one TSC measures
// the whole path: CPU store -> board A -> external cable -> board B ->
// write into host memory -> polling CPU detects the change. Result:
// "the transfer latency is 782 nsec", comparable to InfiniBand FDR's
// sub-microsecond adapter latency — without any protocol stack.
//
// We reproduce the exact loopback rig, and additionally measure the same
// store across a true 2-node sub-cluster (possible in simulation because
// the clock is global).
#include <memory>

#include "bench/bench_util.h"
#include "common/stats.h"

using namespace tca;
using peach2::Peach2Chip;
using peach2::Peach2Config;
using peach2::PortId;
using peach2::RouteEntry;
using peach2::TcaLayout;

namespace {

/// The Fig. 10 rig: one node, two boards, cabled E0->W1 and E1->W0.
struct LoopbackRig {
  explicit LoopbackRig(sim::Scheduler& sched)
      : node(sched, 0,
             node::NodeConfig{.gpu_count = 2,
                              .host_backing_bytes = 32 << 20,
                              .gpu_backing_bytes = 4 << 20}) {
    auto layout = TcaLayout::create(calib::kTcaWindowBase,
                                    calib::kTcaWindowBytes, 2).value();
    for (std::uint32_t b = 0; b < 2; ++b) {
      Peach2Config cfg{
          .device_id = static_cast<pcie::DeviceId>(8 + b),
          .node_id = b,  // board B pretends to be "node 1"
          .layout = layout,
          .reg_base = node::layout::kPeach2RegBase +
                      b * node::layout::kPeach2RegSize,
          .local_gpu0_base = node::layout::gpu_bar_base(0),
          .local_gpu1_base = node::layout::gpu_bar_base(1),
          .local_host_base = node::layout::kHostBase,
      };
      chips[b] = std::make_unique<Peach2Chip>(sched, cfg);
      chips[b]->attach_port(
          PortId::kNorth,
          node.attach_peach2_slot(cfg.device_id, cfg.reg_base,
                                  /*claim_tca_window=*/b == 0));
    }
    // External cables both directions (a 2-"node" ring).
    pcie::LinkConfig cable{.gen = 2,
                           .lanes = 8,
                           .propagation_ps = calib::kCableLatencyPs,
                           .tx_queue_bytes = 600};
    cable_a = std::make_unique<pcie::PcieLink>(sched, cable);
    cable_b = std::make_unique<pcie::PcieLink>(sched, cable);
    chips[0]->attach_port(PortId::kEast, cable_a->end_a());
    chips[1]->attach_port(PortId::kWest, cable_a->end_b());
    chips[1]->attach_port(PortId::kEast, cable_b->end_a());
    chips[0]->attach_port(PortId::kWest, cable_b->end_b());
    // Routing: each board forwards the other slice over East.
    const std::uint64_t slice = layout.slice_size();
    TCA_ASSERT(chips[0]->routing()
                   .add(RouteEntry{.mask = ~(slice - 1),
                                   .lower = layout.slice_base(1),
                                   .upper = layout.slice_base(1),
                                   .port = PortId::kEast})
                   .is_ok());
    TCA_ASSERT(chips[1]->routing()
                   .add(RouteEntry{.mask = ~(slice - 1),
                                   .lower = layout.slice_base(0),
                                   .upper = layout.slice_base(0),
                                   .port = PortId::kEast})
                   .is_ok());
    layout_ = layout;
  }

  node::ComputeNode node;
  std::array<std::unique_ptr<Peach2Chip>, 2> chips;
  std::unique_ptr<pcie::PcieLink> cable_a, cable_b;
  TcaLayout layout_;
};

/// One latency probe, exactly the paper's steps 2-6.
TimePs measure_loopback(sim::Scheduler& sched, LoopbackRig& rig,
                        std::uint32_t probe_value) {
  const std::uint64_t poll_offset = 0x100;
  std::uint32_t zero = 0;
  rig.node.cpu().write_host(poll_offset, std::as_bytes(std::span(&zero, 1)));
  auto poll = rig.node.cpu().poll_host_until_change(poll_offset, 0);

  // Step 2: "Read the clock counter in the PEACH2-A driver."
  const TimePs t0 = sched.now();
  // Step 3: "Store 4-byte data into the region assigned to PEACH2-B within
  // the PCIe address space of PEACH2-A."
  std::array<std::byte, 4> data;
  std::memcpy(data.data(), &probe_value, 4);
  auto store = rig.node.cpu().mmio_store(
      rig.layout_.encode(1, peach2::TcaTarget::kHost, poll_offset), data);
  // Steps 4-6 happen in hardware; the poll task reads the clock on change.
  sched.run();
  return poll.result() - t0;
}

}  // namespace

int main() {
  bench::ShapeCheck check;

  // --- Loopback (the paper's measurement) -----------------------------------
  sim::Scheduler sched;
  LoopbackRig rig(sched);
  SampleSeries samples;
  for (std::uint32_t i = 1; i <= 16; ++i) {
    samples.add_time(measure_loopback(sched, rig, i));
  }
  const double loopback_ns = units::to_ns(static_cast<TimePs>(
      samples.median()));

  // --- Across a real 2-node sub-cluster -------------------------------------
  bench::DmaRig cluster_rig;
  auto& tca = cluster_rig.cluster;
  std::uint32_t zero = 0;
  tca.node(1).cpu().write_host(0x100, std::as_bytes(std::span(&zero, 1)));
  auto poll = tca.node(1).cpu().poll_host_until_change(0x100, 0);
  const TimePs t0 = cluster_rig.sched.now();
  auto store = tca.driver(0).pio_store_u32(tca.global_host(1, 0x100), 7);
  cluster_rig.sched.run();
  const double internode_ns = units::to_ns(poll.result() - t0);

  TablePrinter table({"Path", "Latency", "Note"});
  table.add_row({"PEACH2 loopback (two boards, one node)",
                 TablePrinter::cell(loopback_ns, 0) + " ns",
                 "paper: 782 ns"});
  table.add_row({"PEACH2 node-to-node (2-node ring)",
                 TablePrinter::cell(internode_ns, 0) + " ns",
                 "same path, global clock"});
  table.add_row({"InfiniBand adapter (verbs, reference)",
                 TablePrinter::cell(units::to_ns(calib::kIbRawLatencyPs), 0) +
                     " ns",
                 "paper: IB FDR < 1 usec"});
  table.add_row({"MPI over IB (eager, reference)",
                 TablePrinter::cell(
                     units::to_ns(calib::kIbMpiEagerLatencyPs), 0) +
                     " ns",
                 "the stack TCA bypasses"});

  print_section("Section IV-B1 / Fig. 10: PIO latency between PEACH2 chips");
  table.print();

  check.expect_near(loopback_ns, 782.0, 25.0,
                    "loopback PIO latency matches the paper's 782 ns");
  check.expect_near(internode_ns, loopback_ns, 30.0,
                    "node-to-node latency equals the loopback measurement");
  check.expect(loopback_ns < 1000.0,
               "PEACH2 latency is at or below InfiniBand's ~1 us");
  return check.finish();
}
