// Halo-exchange latency: tca::coll::Communicator::neighbor_exchange versus
// the conventional 3-copy path (cudaMemcpy D2H -> MPI/IB sendrecv ->
// cudaMemcpy H2D), both directions per iteration on a 4-node ring.
//
// Reproduced shape: short boundary rows are exactly the regime the paper
// builds PEACH2 for — the communicator moves both rows in chained-DMA
// descriptors with doorbell-flag completion and per-direction credits,
// skipping the 3-copy path's cudaMemcpy brackets and MPI rendezvous, and
// must win there. As rows grow the exchange turns bandwidth-bound and
// dual-rail IB outruns the single PCIe Gen2 x8 TCA link (the same
// hierarchy rationale bench_tca_vs_ib gates: "TCA ... for local
// communication with low latency and InfiniBand for global communication
// with high bandwidth"), so the conventional stack is allowed to catch up
// — but only by bandwidth, never by a collapse.
//
// --json PATH writes the sweep for scripts/bench_perf.sh (BENCH_coll.json);
// --smoke shrinks the sweep for scripts/check.sh.
#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/conventional.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "bench/bench_util.h"
#include "coll/communicator.h"

using namespace tca;

namespace {

constexpr std::uint32_t kNodes = 4;

/// Slab layout per rank, mirroring examples/halo_exchange.cpp:
/// [recv_from_prev][send_to_prev][send_to_next][recv_from_next].
coll::HaloSpec slab_spec(api::Buffer buf, std::uint64_t row_bytes) {
  return coll::HaloSpec{.buf = buf,
                        .send_to_next_off = 2 * row_bytes,
                        .send_to_prev_off = 1 * row_bytes,
                        .recv_from_prev_off = 0,
                        .recv_from_next_off = 3 * row_bytes,
                        .bytes = row_bytes};
}

struct Point {
  TimePs tca_ps = 0;  ///< per-iteration average
  TimePs mpi_ps = 0;
  bool verified = false;
};

Point run_point(std::uint64_t row_bytes, int iters) {
  Point p;
  // Recognizable per-rank row patterns so the post-run check proves both
  // directions actually moved.
  auto row_byte = [](std::uint32_t rank, bool to_next) {
    return std::byte{static_cast<unsigned char>(0x10 + rank * 2 +
                                                (to_next ? 1 : 0))};
  };

  // --- tca::coll ------------------------------------------------------------
  {
    sim::Scheduler sched;
    api::Runtime rt(sched,
                    api::TcaConfig{.spec = fabric::TopologySpec::ring(kNodes),
                                   .node_config = {.gpu_count = 2,
                                                   .host_backing_bytes =
                                                       32ull << 20,
                                                   .gpu_backing_bytes =
                                                       32ull << 20}});
    auto comm = coll::Communicator::create(rt);
    TCA_ASSERT(comm.is_ok());
    std::vector<api::Buffer> bufs(kNodes);
    for (std::uint32_t r = 0; r < kNodes; ++r) {
      bufs[r] = rt.alloc_gpu(r, 0, 4 * row_bytes).value();
      rt.write(bufs[r], 1 * row_bytes,
               std::vector<std::byte>(row_bytes, row_byte(r, false)));
      rt.write(bufs[r], 2 * row_bytes,
               std::vector<std::byte>(row_bytes, row_byte(r, true)));
    }
    const TimePs t0 = sched.now();
    std::vector<Status> st(kNodes);
    for (std::uint32_t r = 0; r < kNodes; ++r) {
      sim::spawn([](coll::Communicator& c, api::Buffer b, std::uint32_t rank,
                    std::uint64_t row, int n, Status& out) -> sim::Task<> {
        out = Status::ok();
        for (int i = 0; i < n && out.is_ok(); ++i) {
          out = co_await c.neighbor_exchange(rank, slab_spec(b, row));
        }
      }(comm.value(), bufs[r], r, row_bytes, iters, st[r]));
    }
    sched.run();
    p.tca_ps = (sched.now() - t0) / iters;
    p.verified = true;
    for (std::uint32_t r = 0; r < kNodes; ++r) {
      TCA_ASSERT(st[r].is_ok());
      std::vector<std::byte> got(row_bytes);
      rt.read(bufs[r], 0, got);  // from prev: prev's to_next row
      p.verified =
          p.verified &&
          got == std::vector<std::byte>(
                     row_bytes, row_byte((r + kNodes - 1) % kNodes, true));
      rt.read(bufs[r], 3 * row_bytes, got);  // from next: next's to_prev row
      p.verified = p.verified &&
                   got == std::vector<std::byte>(
                              row_bytes, row_byte((r + 1) % kNodes, false));
    }
  }

  // --- Conventional 3-copy path --------------------------------------------
  {
    sim::Scheduler sched;
    std::vector<std::unique_ptr<node::ComputeNode>> nodes;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      nodes.push_back(std::make_unique<node::ComputeNode>(
          sched, static_cast<int>(i),
          node::NodeConfig{.gpu_count = 2,
                           .host_backing_bytes = 32ull << 20,
                           .gpu_backing_bytes = 32ull << 20}));
    }
    std::vector<node::ComputeNode*> ptrs;
    for (auto& n : nodes) ptrs.push_back(n.get());
    baseline::IbFabric fabric(sched, ptrs);
    baseline::MpiLite mpi(sched, fabric);
    baseline::ConventionalGpuComm conv(mpi, ptrs);
    for (std::uint32_t r = 0; r < kNodes; ++r) {
      nodes[r]->gpu(0).poke(
          1 * row_bytes, std::vector<std::byte>(row_bytes, row_byte(r, false)));
      nodes[r]->gpu(0).poke(
          2 * row_bytes, std::vector<std::byte>(row_bytes, row_byte(r, true)));
    }
    const TimePs t0 = sched.now();
    for (std::uint32_t r = 0; r < kNodes; ++r) {
      sim::spawn([](baseline::ConventionalGpuComm& c, std::uint32_t rank,
                    std::uint64_t row, int n) -> sim::Task<> {
        const std::uint32_t prev = (rank + kNodes - 1) % kNodes;
        const std::uint32_t next = (rank + 1) % kNodes;
        for (int i = 0; i < n; ++i) {
          auto tx_prev = c.send_gpu(rank, 0, 1 * row, row, prev, i * 4 + 0);
          auto tx_next = c.send_gpu(rank, 0, 2 * row, row, next, i * 4 + 1);
          auto rx_prev = c.recv_gpu(rank, 0, 0, row, prev, i * 4 + 1);
          auto rx_next = c.recv_gpu(rank, 0, 3 * row, row, next, i * 4 + 0);
          co_await std::move(tx_prev);
          co_await std::move(tx_next);
          co_await std::move(rx_prev);
          co_await std::move(rx_next);
        }
      }(conv, r, row_bytes, iters));
    }
    sched.run();
    p.mpi_ps = (sched.now() - t0) / iters;
  }
  return p;
}

int run(bool smoke, const std::string& json_path) {
  bench::ShapeCheck check;
  const std::vector<std::uint64_t> row_sizes =
      smoke ? std::vector<std::uint64_t>{2ull << 10}
            : std::vector<std::uint64_t>{2ull << 10, 8ull << 10, 32ull << 10};
  const int iters = smoke ? 2 : 8;

  struct Row {
    std::uint64_t bytes;
    Point p;
  };
  std::vector<Row> rows;
  bool all_verified = true;
  double short_row_speedup = 0;
  double worst_ratio = 1e9;

  TablePrinter table({"Row size", "tca::coll", "MPI 3-copy", "speedup",
                      "(per iteration, both directions)"});
  for (std::uint64_t bytes : row_sizes) {
    const Point p = run_point(bytes, iters);
    all_verified = all_verified && p.verified;
    const double ratio =
        static_cast<double>(p.mpi_ps) / static_cast<double>(p.tca_ps);
    if (bytes == row_sizes.front()) short_row_speedup = ratio;
    worst_ratio = std::min(worst_ratio, ratio);
    table.add_row({units::format_size(bytes),
                   units::format_time(p.tca_ps),
                   units::format_time(p.mpi_ps),
                   TablePrinter::cell(static_cast<double>(p.mpi_ps) /
                                          static_cast<double>(p.tca_ps),
                                      2) +
                       "x",
                   ""});
    rows.push_back({bytes, p});
  }
  print_section("Halo exchange on a 4-node ring: boundary rows per iteration");
  table.print();
  std::printf(
      "\nBoth boundary rows ride one chained-DMA put with doorbell-flag\n"
      "completion and per-direction credits; the conventional path brackets\n"
      "every row with cudaMemcpy D2H/H2D around the MPI rendezvous. Bulk\n"
      "rows turn bandwidth-bound, where dual-rail IB outruns the single\n"
      "TCA link — the hierarchy split the paper argues for.\n");

  check.expect(all_verified, "both halo directions verified on every rank");
  check.expect(short_row_speedup > 1.2,
               "short boundary rows: chained-DMA halo beats the 3-copy path (" +
                   TablePrinter::cell(short_row_speedup, 2) + "x)");
  check.expect(worst_ratio > 0.6,
               "bandwidth-bound rows: IB catches up by bandwidth only, no "
               "collapse (worst " +
                   TablePrinter::cell(worst_ratio, 2) + "x)");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    check.expect(f != nullptr, "write " + json_path);
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
      std::fprintf(f, "  \"nodes\": %u,\n", kNodes);
      std::fprintf(f, "  \"verified\": %s,\n", all_verified ? "true" : "false");
      std::fprintf(f, "  \"sweep\": [\n");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"row_bytes\": %llu, \"coll_ps\": %lld, \"mpi_ps\": %lld, "
            "\"speedup\": %.3f}%s\n",
            static_cast<unsigned long long>(r.bytes),
            static_cast<long long>(r.p.tca_ps),
            static_cast<long long>(r.p.mpi_ps),
            static_cast<double>(r.p.mpi_ps) / static_cast<double>(r.p.tca_ps),
            i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  }
  return check.finish();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return run(smoke, json_path);
}
