// Simulator-core microbenchmarks (google-benchmark): event throughput of
// the scheduler, coroutine wake cost, link TLP throughput, address decode,
// and RNG fill. These gate the *simulator's* performance, not the modeled
// hardware — a slow engine would make the figure sweeps impractical.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "peach2/tca_layout.h"
#include "pcie/link.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace {

using namespace tca;

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sched.schedule_at(i, [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerEventThroughput)->Arg(1000)->Arg(100000);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    sim::Trigger ping(sched), pong(sched);
    const int rounds = static_cast<int>(state.range(0));
    sim::spawn([](sim::Trigger& in, sim::Trigger& out, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) {
        co_await in.wait();
        in.reset();
        out.fire();
      }
    }(ping, pong, rounds));
    sim::spawn([](sim::Trigger& out, sim::Trigger& in, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) {
        out.fire();
        co_await in.wait();
        in.reset();
      }
    }(ping, pong, rounds));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_CoroutinePingPong)->Arg(10000);

void BM_LinkTlpThroughput(benchmark::State& state) {
  struct Sink : pcie::TlpSink {
    void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override {
      port.release_rx(tlp.wire_bytes());
    }
  };
  std::vector<std::byte> payload(256, std::byte{0x5A});
  for (auto _ : state) {
    sim::Scheduler sched;
    pcie::PcieLink link(sched, {.gen = 2, .lanes = 8});
    Sink sink;
    link.end_b().set_sink(&sink);
    const int n = static_cast<int>(state.range(0));
    int sent = 0;
    std::function<void()> pump = [&] {
      while (sent < n) {
        pcie::Tlp tlp = pcie::Tlp::mem_write(
            static_cast<std::uint64_t>(sent) * 256, payload);
        if (!link.end_a().can_send(tlp)) return;
        link.end_a().send(std::move(tlp));
        ++sent;
      }
    };
    link.end_a().set_tx_ready(pump);
    pump();
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkTlpThroughput)->Arg(10000);

void BM_TcaLayoutDecode(benchmark::State& state) {
  auto layout = peach2::TcaLayout::create(0x80'0000'0000ull, 512ull << 30,
                                          16).value();
  Rng rng(7);
  std::vector<std::uint64_t> addrs(1024);
  for (auto& a : addrs) {
    a = 0x80'0000'0000ull + rng.next_below(512ull << 30);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto loc = layout.decode(addrs[i++ & 1023]);
    benchmark::DoNotOptimize(loc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcaLayoutDecode);

void BM_RngFill(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rng.fill(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngFill)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
