// Sub-cluster scaling (Sections II-B, III-E): ring size, hop distance, and
// the dual-ring (South port) topology.
//
// The paper bounds the sub-cluster at 8-16 nodes because "a large number of
// nodes degrades the performance": every hop adds a store-and-forward
// router traversal plus cable flight time. This bench quantifies the
// per-hop cost, shows bandwidth is hop-count-insensitive for large
// transfers (pipelining hides latency), and shows the S-port dual-ring
// halving worst-case hops at 8+ nodes.
#include "bench/bench_util.h"

using namespace tca;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

namespace {

/// PIO latency from node 0 to node `dest` in an existing cluster.
double pio_latency_ns(bench::DmaRig& rig, std::uint32_t dest) {
  auto& tca = rig.cluster;
  std::uint32_t zero = 0;
  tca.node(dest).cpu().write_host(0x200, std::as_bytes(std::span(&zero, 1)));
  auto poll = tca.node(dest).cpu().poll_host_until_change(0x200, 0);
  const TimePs t0 = rig.sched.now();
  auto store = tca.driver(0).pio_store_u32(tca.global_host(dest, 0x200), 5);
  rig.sched.run();
  return units::to_ns(poll.result() - t0);
}

/// 255 x 4 KiB chained write bandwidth from node 0 to node `dest`.
double chain_bw(bench::DmaRig& rig, std::uint32_t dest) {
  driver::Peach2Driver& drv = rig.cluster.driver(0);
  const TimePs elapsed =
      rig.run(0, rig.make_chain(255, 4096, DmaDirection::kWrite,
                                drv.internal_global(0),
                                rig.cluster.global_host(dest, 0)));
  return units::gbytes_per_second(255ull * 4096, elapsed);
}

}  // namespace

int main() {
  bench::ShapeCheck check;

  // --- Per-hop latency and bandwidth in a 8-node ring ------------------------
  bench::DmaRig ring8(8);
  TablePrinter hops({"Destination", "Hops", "PIO latency", "DMA BW 4KiBx255",
                     "(ring of 8)"});
  std::vector<double> lat_by_hops;
  for (std::uint32_t dest : {1u, 2u, 3u, 4u}) {
    const double lat = pio_latency_ns(ring8, dest);
    const double bw = chain_bw(ring8, dest);
    lat_by_hops.push_back(lat);
    hops.add_row({"node " + std::to_string(dest),
                  TablePrinter::cell(std::uint64_t{ring8.cluster.hops(
                      0, dest)}),
                  TablePrinter::cell(lat, 0) + " ns",
                  bench::fmt_gbps(bw) + " GB/s", ""});
  }
  print_section("Ring scaling: hop distance vs latency and bandwidth");
  hops.print();

  const double per_hop_1 = lat_by_hops[1] - lat_by_hops[0];
  const double per_hop_2 = lat_by_hops[2] - lat_by_hops[1];
  std::printf("\nPer-hop cost: +%.0f ns (route pipeline %.0f ns + cable "
              "%.0f ns + wire)\n",
              per_hop_1, units::to_ns(calib::kRouteLatencyPs),
              units::to_ns(calib::kCableLatencyPs));
  std::printf("Multi-hop 4 KiB bandwidth declines as the delivery-"
              "notification round trip\ngrows past the per-descriptor wire "
              "time — the reason the paper bounds\nsub-clusters at 8-16 "
              "nodes (\"a large number of nodes degrades the\n"
              "performance\").\n");

  // --- Ring size sweep: adjacent-node metrics stay constant ------------------
  TablePrinter rings({"Nodes", "Adjacent PIO", "Adjacent DMA BW",
                      "Max hops (ring)", "Max hops (dual ring)"});
  for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
    bench::DmaRig rig(n);
    rings.add_row({TablePrinter::cell(std::uint64_t{n}),
                   TablePrinter::cell(pio_latency_ns(rig, 1), 0) + " ns",
                   bench::fmt_gbps(chain_bw(rig, 1)) + " GB/s",
                   TablePrinter::cell(std::uint64_t{n / 2}),
                   TablePrinter::cell(std::uint64_t{n / 4 + 1})});
  }
  print_section("Ring size sweep (sub-cluster bounds: 8-16 nodes)");
  rings.print();

  // --- Dual-ring cross-traffic -------------------------------------------------
  bench::DmaRig dual(8);  // rebuilt as dual-ring below
  sim::Scheduler dsched;
  fabric::SubCluster dual_ring(
      dsched, fabric::SubClusterConfig{
                  .spec = fabric::TopologySpec::dual_ring(8),
                  .node_config = {.gpu_count = 2,
                                  .host_backing_bytes = 64ull << 20,
                                  .gpu_backing_bytes = 8ull << 20}});
  // Node 0 -> node 4 (its S-port pair): one hop through South.
  std::uint32_t zero = 0;
  dual_ring.node(4).cpu().write_host(0x80, std::as_bytes(std::span(&zero, 1)));
  auto poll = dual_ring.node(4).cpu().poll_host_until_change(0x80, 0);
  const TimePs t0 = dsched.now();
  auto store =
      dual_ring.driver(0).pio_store_u32(dual_ring.global_host(4, 0x80), 9);
  dsched.run();
  const double cross_ns = units::to_ns(poll.result() - t0);
  std::printf("\nDual ring: node0 -> node4 over the South port: %.0f ns "
              "(vs %.0f ns for 4 ring hops)\n",
              cross_ns, lat_by_hops[3]);

  // Tolerance covers the 50 ns polling-loop quantization of the detector.
  check.expect_near(per_hop_1, per_hop_2, 55.0,
                    "latency grows linearly with hop count");
  check.expect(lat_by_hops[3] > lat_by_hops[0] + 3 * 150 &&
                   lat_by_hops[3] < lat_by_hops[0] + 3 * 300,
               "4-hop latency = 1-hop + 3 x per-hop cost");
  check.expect_near(per_hop_1,
                    units::to_ns(calib::kRouteLatencyPs +
                                 calib::kCableLatencyPs),
                    60.0, "per-hop cost ~= route pipeline + cable");
  check.expect(cross_ns < lat_by_hops[3],
               "S-port cross-link beats riding the ring to the far side");
  return check.finish();
}
