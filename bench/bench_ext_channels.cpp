// Extension bench: the production board's multi-channel DMAC.
//
// The paper's conclusion announces "a production version of the PEACH2
// board"; that board shipped a multi-channel DMA controller. This bench
// quantifies what the channels buy:
//   * small chains: concurrent channels overlap the fixed doorbell /
//     table-fetch / interrupt costs — near-linear speedup;
//   * large chains: the single Gen2 x8 wire is the bottleneck — channels
//     cannot multiply bandwidth, only hide setup latency;
//   * independent destinations: flows to different ring directions use
//     disjoint cables and scale.
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

namespace {

/// `chains` concurrent chains of `descs` x `size` writes from node 0 to
/// `dest(c)`; returns total elapsed for all of them.
template <typename DestFn>
TimePs run_concurrent(std::uint32_t nodes, int chains, std::uint32_t descs,
                      std::uint32_t size, DestFn&& dest) {
  DmaRig rig(nodes);
  driver::Peach2Driver& drv = rig.cluster.driver(0);
  std::vector<sim::Task<TimePs>> tasks;
  for (int c = 0; c < chains; ++c) {
    std::vector<DmaDescriptor> chain;
    for (std::uint32_t i = 0; i < descs; ++i) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(c) * descs + i) * size % (1 << 20);
      chain.push_back({.src = drv.internal_global(off),
                       .dst = rig.cluster.global_host(dest(c), off),
                       .length = size,
                       .direction = DmaDirection::kWrite});
    }
    tasks.push_back(drv.run_chain(std::move(chain), c));
  }
  rig.sched.run();
  TimePs last = 0;
  for (auto& t : tasks) last = std::max(last, t.result());
  return last;
}

}  // namespace

int main() {
  bench::ShapeCheck check;

  // --- Small chains: fixed costs overlap -------------------------------------
  TablePrinter small({"Chains", "1 x 4 KiB each, serial est.", "Concurrent",
                      "Speedup"});
  const TimePs one_small =
      run_concurrent(2, 1, 1, 4096, [](int) { return 1u; });
  double speedup4_small = 0;
  for (int chains : {1, 2, 4}) {
    const TimePs t = run_concurrent(2, chains, 1, 4096,
                                    [](int) { return 1u; });
    const double speedup =
        static_cast<double>(one_small) * chains / static_cast<double>(t);
    small.add_row({TablePrinter::cell(std::uint64_t(chains)),
                   units::format_time(one_small * chains),
                   units::format_time(t),
                   TablePrinter::cell(speedup, 2) + "x"});
    if (chains == 4) speedup4_small = speedup;
  }

  // --- Large chains: the wire is the bottleneck --------------------------------
  TablePrinter big({"Chains", "64 x 4 KiB each, serial est.", "Concurrent",
                    "Speedup"});
  const TimePs one_big =
      run_concurrent(2, 1, 64, 4096, [](int) { return 1u; });
  double speedup4_big = 0;
  for (int chains : {1, 2, 4}) {
    const TimePs t = run_concurrent(2, chains, 64, 4096,
                                    [](int) { return 1u; });
    const double speedup =
        static_cast<double>(one_big) * chains / static_cast<double>(t);
    big.add_row({TablePrinter::cell(std::uint64_t(chains)),
                 units::format_time(one_big * chains), units::format_time(t),
                 TablePrinter::cell(speedup, 2) + "x"});
    if (chains == 4) speedup4_big = speedup;
  }

  // --- Disjoint directions: East and West cables in parallel -------------------
  // In a 4-node ring, node1 is East of node0 and node3 is West: two chains
  // to opposite neighbors leave on different ports.
  const TimePs east_only =
      run_concurrent(4, 1, 64, 4096, [](int) { return 1u; });
  const TimePs both_ways = run_concurrent(
      4, 2, 64, 4096, [](int c) { return c == 0 ? 1u : 3u; });

  print_section("Extension: multi-channel DMAC (production PEACH2 board)");
  std::printf("Small chains (1 x 4 KiB): fixed costs dominate and overlap\n");
  small.print();
  std::printf("\nLarge chains (64 x 4 KiB): one Gen2 x8 wire bottleneck\n");
  big.print();
  std::printf("\nOpposite ring directions (64 x 4 KiB each): E+W cables in "
              "parallel\n  east only: %s   east+west concurrently: %s "
              "(per-chain)\n",
              units::format_time(east_only).c_str(),
              units::format_time(both_ways).c_str());

  check.expect(speedup4_small > 2.0,
               "4 small chains overlap fixed costs (>2x vs serial)");
  check.expect(speedup4_big < 1.5,
               "large chains stay wire-limited (channels don't add BW)");
  check.expect(both_ways < east_only * 12 / 10,
               "opposite-direction chains use disjoint cables");
  return check.finish();
}
