// Sim-core throughput: events/sec of the indexed and sharded schedulers
// against the seed (priority_queue + tombstone-set + std::function) baseline
// backend on synthetic churn, plus the guarantees the rewrites must
// preserve: determinism (identical fire order/results on all three
// backends) and allocation-free steady-state events.
//
// Workloads ("events/sec" counts every scheduler touch: schedule + cancel +
// fire):
//   timer_fire       64 self-rescheduling timers, 32-byte captures — the
//                    LinkPort/Dmac shape, where the seed std::function
//                    heap-allocated every event.
//   timer_fire_small same, 8-byte captures the seed kept inline — isolates
//                    the queue win from the allocation win.
//   churn_mix        schedule 2 / cancel 1 / fire 1 against a ~1k-deep
//                    queue — the timeout-arm/disarm pattern.
//   reschedule       a timeout pushed out 8 times before firing.
//
// --json PATH writes the measurements for scripts/bench_perf.sh, which
// merges in wall-clock A/B runs of bench_fig9_dma_chain/bench_ring_scaling
// and emits BENCH_sim_core.json. --smoke shrinks the workloads to a <1 s
// regression tripwire for scripts/check.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/event_fn.h"
#include "sim/scheduler.h"

namespace tca::bench {
namespace {

using sim::EventFn;
using sim::Scheduler;
using Clock = std::chrono::steady_clock;
using QueueImpl = Scheduler::QueueImpl;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

// --- timer_fire: self-rescheduling periodic timers -------------------------

struct TimerState {
  Scheduler* sched;
  std::uint64_t* remaining;
  TimePs period;
};

void arm_timer(TimerState t) {
  if (*t.remaining == 0) return;
  --*t.remaining;
  // 32-byte capture: the simulator's common shape (this + a few scalars).
  t.sched->schedule_after(t.period, [t, pad = std::uint64_t{0}] {
    (void)pad;
    arm_timer(t);
  });
}

void arm_timer_small(TimerState* t) {
  if (*t->remaining == 0) return;
  --*t->remaining;
  t->sched->schedule_after(t->period, [t] { arm_timer_small(t); });
}

/// Returns events/sec; `small` selects the 8-byte-capture variant.
double run_timer_fire(QueueImpl impl, std::uint64_t fires, bool small) {
  Scheduler sched(impl);
  std::uint64_t remaining = fires;
  std::vector<TimerState> timers;
  for (int i = 0; i < 64; ++i) {
    timers.push_back(TimerState{&sched, &remaining,
                                97 + static_cast<TimePs>(i)});
  }
  const auto t0 = Clock::now();
  for (auto& t : timers) {
    if (small) {
      arm_timer_small(&t);
    } else {
      arm_timer(t);
    }
  }
  sched.run();
  const double secs = seconds_since(t0);
  // One schedule + one fire per event.
  return static_cast<double>(2 * sched.events_processed()) / secs;
}

// --- churn_mix: schedule 2 / cancel 1 / fire 1 ------------------------------

struct ChurnResult {
  double events_per_sec = 0;
  std::uint64_t processed = 0;
  TimePs final_now = 0;
  std::uint64_t fire_hash = 0xcbf29ce484222325ull;
};

/// Steady queue of ~kPending "victim" timeouts (armed far out, always
/// disarmed in time) alongside near-future "worker" events that fire. Only
/// certainly-pending ids are cancelled, so both backends agree and the seed's
/// tombstone set stays seed-realistic (drained, not leaking).
ChurnResult run_churn(QueueImpl impl, std::uint64_t iterations) {
  constexpr std::size_t kPending = 1024;
  constexpr TimePs kVictimDelay = units::ms(1);
  Scheduler sched(impl);
  ChurnResult res;
  std::uint64_t fired = 0;

  // Pre-generated delays keep harness cost flat and identical across impls.
  std::vector<TimePs> delays(4096);
  Rng rng(123);
  for (auto& d : delays) d = 100 + static_cast<TimePs>(rng.next_below(100'000));

  // 56-byte capture: the realistic shape of a link-delivery or DMA-step
  // event (this + a descriptor's worth of scalars).
  struct Pad {
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
  };
  auto worker = [&](std::uint64_t token) {
    return [&fired, &res, token, pad = Pad{}] {
      (void)pad;
      ++fired;
      res.fire_hash = hash_combine(res.fire_hash, token);
    };
  };

  std::vector<Scheduler::EventId> victims(kPending);
  for (std::size_t i = 0; i < kPending; ++i) {
    victims[i] = sched.schedule_after(kVictimDelay, worker(~i));
  }

  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    sched.schedule_after(delays[i & 4095], worker(i));
    const std::size_t v = i % kPending;
    TCA_ASSERT(sched.cancel(victims[v]));
    victims[v] = sched.schedule_after(kVictimDelay, worker(~i));
    sched.step();
  }
  sched.run();  // drain workers and the last kPending victims
  const double secs = seconds_since(t0);
  res.processed = sched.events_processed();
  res.final_now = sched.now();
  // Touches per iteration: 2 schedules + 1 cancel + 1 fire; plus the drain.
  const double events =
      static_cast<double>(4 * iterations + 2 * kPending);
  res.events_per_sec = events / secs;
  (void)fired;
  return res;
}

// --- reschedule: timeout pushed out repeatedly ------------------------------

double run_reschedule(QueueImpl impl, std::uint64_t iterations) {
  Scheduler sched(impl);
  std::uint64_t fired = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    auto id = sched.schedule_after(1000, [&fired, pad = std::uint64_t{0}] {
      (void)pad;
      ++fired;
    });
    for (TimePs k = 1; k <= 8; ++k) {
      TCA_ASSERT(sched.cancel(id));
      id = sched.schedule_after(1000 + k, [&fired, pad = std::uint64_t{0}] {
        (void)pad;
        ++fired;
      });
    }
    sched.step();
  }
  const double secs = seconds_since(t0);
  return static_cast<double>(18 * iterations) / secs;
}

// --- harness ----------------------------------------------------------------

struct Measurement {
  const char* name;
  double baseline_eps = 0;
  double indexed_eps = 0;
  double sharded_eps = 0;  ///< merge-mode sharded backend (TCA_SCHED_BASELINE=2)
  [[nodiscard]] double speedup() const {
    return baseline_eps > 0 ? indexed_eps / baseline_eps : 0;
  }
  [[nodiscard]] double sharded_speedup() const {
    return baseline_eps > 0 ? sharded_eps / baseline_eps : 0;
  }
};

/// Best of `reps` runs: the workloads are deterministic, so the max filters
/// out scheduler/interference noise on a single-core box.
template <typename F>
double best_of(int reps, F&& run) {
  double best = 0;
  for (int r = 0; r < reps; ++r) best = std::max(best, run());
  return best;
}

int run(bool smoke, const std::string& json_path) {
  const std::uint64_t scale = smoke ? 20 : 1;
  const std::uint64_t kTimerFires = 2'000'000 / scale;
  const std::uint64_t kChurnIters = 1'000'000 / scale;
  const std::uint64_t kReschedIters = 200'000 / scale;
  // Deterministic workloads + best-of-N means more reps only tightens the
  // noise floor (both sides of every ratio get the same treatment); 5 is
  // where the single-core box's run-to-run spread stops moving the ratios.
  const int kReps = smoke ? 2 : 5;
  // Full runs gate the tentpole's >=3x claim; smoke is a loose tripwire.
  const double min_headline = smoke ? 1.5 : 3.0;

  print_section("Sim-core event-engine throughput (indexed vs. seed baseline)");

  Measurement timer{"timer_fire"};
  Measurement timer_small{"timer_fire_small"};
  Measurement churn{"churn_mix"};
  Measurement resched{"reschedule"};

  // Allocation-free guarantee, measured around the indexed timer workload
  // (32-byte captures — the LinkPort/Dmac shape).
  const std::uint64_t heap_before = EventFn::heap_constructions();
  timer.indexed_eps =
      run_timer_fire(QueueImpl::kIndexed, kTimerFires, false);
  const std::uint64_t heap_delta =
      EventFn::heap_constructions() - heap_before;
  timer.indexed_eps = std::max(
      timer.indexed_eps, best_of(kReps - 1, [&] {
        return run_timer_fire(QueueImpl::kIndexed, kTimerFires, false);
      }));
  timer.baseline_eps = best_of(kReps, [&] {
    return run_timer_fire(QueueImpl::kBaseline, kTimerFires, false);
  });

  timer.sharded_eps = best_of(kReps, [&] {
    return run_timer_fire(QueueImpl::kSharded, kTimerFires, false);
  });

  timer_small.indexed_eps = best_of(kReps, [&] {
    return run_timer_fire(QueueImpl::kIndexed, kTimerFires, true);
  });
  timer_small.baseline_eps = best_of(kReps, [&] {
    return run_timer_fire(QueueImpl::kBaseline, kTimerFires, true);
  });
  timer_small.sharded_eps = best_of(kReps, [&] {
    return run_timer_fire(QueueImpl::kSharded, kTimerFires, true);
  });

  const ChurnResult churn_idx = run_churn(QueueImpl::kIndexed, kChurnIters);
  const ChurnResult churn_idx2 = run_churn(QueueImpl::kIndexed, kChurnIters);
  const ChurnResult churn_base = run_churn(QueueImpl::kBaseline, kChurnIters);
  const ChurnResult churn_shard = run_churn(QueueImpl::kSharded, kChurnIters);
  churn.indexed_eps = std::max(churn_idx.events_per_sec,
                               churn_idx2.events_per_sec);
  churn.indexed_eps = std::max(churn.indexed_eps, best_of(kReps - 2, [&] {
                                 return run_churn(QueueImpl::kIndexed,
                                                  kChurnIters)
                                     .events_per_sec;
                               }));
  churn.baseline_eps =
      std::max(churn_base.events_per_sec, best_of(kReps - 1, [&] {
                 return run_churn(QueueImpl::kBaseline, kChurnIters)
                     .events_per_sec;
               }));
  churn.sharded_eps =
      std::max(churn_shard.events_per_sec, best_of(kReps - 1, [&] {
                 return run_churn(QueueImpl::kSharded, kChurnIters)
                     .events_per_sec;
               }));

  resched.indexed_eps = best_of(kReps, [&] {
    return run_reschedule(QueueImpl::kIndexed, kReschedIters);
  });
  resched.baseline_eps = best_of(kReps, [&] {
    return run_reschedule(QueueImpl::kBaseline, kReschedIters);
  });
  resched.sharded_eps = best_of(kReps, [&] {
    return run_reschedule(QueueImpl::kSharded, kReschedIters);
  });

  TablePrinter table({"workload", "baseline (Mev/s)", "indexed (Mev/s)",
                      "sharded (Mev/s)", "speedup", "sharded speedup"});
  for (const Measurement* m : {&timer, &timer_small, &churn, &resched}) {
    table.add_row({m->name, TablePrinter::cell(m->baseline_eps / 1e6),
                   TablePrinter::cell(m->indexed_eps / 1e6),
                   TablePrinter::cell(m->sharded_eps / 1e6),
                   TablePrinter::cell(m->speedup()),
                   TablePrinter::cell(m->sharded_speedup())});
  }
  table.print();

  const bool deterministic = churn_idx.processed == churn_idx2.processed &&
                             churn_idx.final_now == churn_idx2.final_now &&
                             churn_idx.fire_hash == churn_idx2.fire_hash;
  // Three-way: the sharded merge backend must reproduce the exact fire
  // order (and therefore hash) of the indexed and seed baseline backends.
  const bool impl_equivalent = churn_idx.processed == churn_base.processed &&
                               churn_idx.final_now == churn_base.final_now &&
                               churn_idx.fire_hash == churn_base.fire_hash &&
                               churn_idx.processed == churn_shard.processed &&
                               churn_idx.final_now == churn_shard.final_now &&
                               churn_idx.fire_hash == churn_shard.fire_hash;

  ShapeCheck check;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "headline churn_mix speedup %.2fx >= %.1fx over seed queue",
                churn.speedup(), min_headline);
  check.expect(churn.speedup() >= min_headline, buf);
  std::snprintf(buf, sizeof buf,
                "timer_fire at least at parity with seed queue (%.2fx >= "
                "0.8x; the win here is zero allocations, not raw rate)",
                timer.speedup());
  check.expect(timer.speedup() >= 0.8, buf);
  std::snprintf(buf, sizeof buf,
                "timer_fire_small speedup %.2fx >= 1.0x over seed queue "
                "(near-now calendar tier closes the small-capture gap)",
                timer_small.speedup());
  check.expect(timer_small.speedup() >= 1.0, buf);
  std::snprintf(buf, sizeof buf,
                "reschedule speedup %.2fx >= 1.2x over seed queue",
                resched.speedup());
  check.expect(resched.speedup() >= 1.2, buf);
  check.expect(heap_delta == 0,
               "steady-state events allocation-free (EventFn heap fallbacks: " +
                   std::to_string(heap_delta) + ")");
  check.expect(deterministic,
               "two identical indexed runs: same events_processed, now, "
               "fire-order hash");
  check.expect(impl_equivalent,
               "baseline, indexed, and sharded backends produce identical "
               "simulated results (three-way fire-order hash)");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    check.expect(f != nullptr, "write " + json_path);
    if (f == nullptr) return check.finish(), 1;
    std::fprintf(f, "{\n  \"bench\": \"sim_core\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    for (const Measurement* m : {&timer, &timer_small, &churn, &resched}) {
      std::fprintf(f,
                   "  \"%s\": {\"baseline_events_per_sec\": %.0f, "
                   "\"indexed_events_per_sec\": %.0f, "
                   "\"sharded_events_per_sec\": %.0f, \"speedup\": %.3f, "
                   "\"sharded_speedup\": %.3f},\n",
                   m->name, m->baseline_eps, m->indexed_eps, m->sharded_eps,
                   m->speedup(), m->sharded_speedup());
    }
    std::fprintf(f, "  \"headline_speedup\": %.3f,\n", churn.speedup());
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"backends_equivalent\": %s,\n",
                 impl_equivalent ? "true" : "false");
    std::fprintf(f, "  \"eventfn_heap_fallbacks_steady_state\": %llu\n",
                 static_cast<unsigned long long>(heap_delta));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  return check.finish();
}

}  // namespace
}  // namespace tca::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return tca::bench::run(smoke, json_path);
}
