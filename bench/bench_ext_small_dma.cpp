// Extension bench (Section IV-A1): descriptor-less DMA and polled
// completion for small transfers.
//
// "Since retrieving the descriptor table is the dominant factor in
//  performance degradation, the DMA function without a descriptor is also
//  desired for relatively small amounts of data, i.e., several hundreds or
//  thousands of bytes."
//
// This bench implements and quantifies exactly that wished-for feature,
// plus a polled (status-writeback) completion mode that avoids the
// interrupt path — the two optimizations the production TCA software stack
// adopted. Compared against the baseline descriptor chain and PIO.
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

int main() {
  bench::ShapeCheck check;
  DmaRig rig;
  driver::Peach2Driver& drv = rig.cluster.driver(0);
  auto& tca = rig.cluster;

  const std::vector<std::uint32_t> sizes = {64, 256, 1024, 4096, 16384};

  TablePrinter table({"Size", "Chain+IRQ", "Chain+poll", "Immediate+IRQ",
                      "PIO store", "(remote host write latency)"});
  double chain_4k_us = 0, imm_4k_us = 0, polled_4k_us = 0;

  for (std::uint32_t size : sizes) {
    const DmaDescriptor desc{.src = drv.internal_global(0),
                             .dst = tca.global_host(1, 0),
                             .length = size,
                             .direction = DmaDirection::kWrite};

    // Baseline: single-descriptor chain, interrupt completion.
    auto t_chain = drv.run_chain({desc});
    rig.sched.run();
    const TimePs chain = t_chain.result();

    // Polled completion: same chain, status writeback + host spin.
    auto t_polled = drv.run_chain_polled({desc});
    rig.sched.run();
    const TimePs polled = t_polled.result();

    // Descriptor-less immediate DMA.
    auto t_imm = drv.run_immediate(desc);
    rig.sched.run();
    const TimePs imm = t_imm.result();

    // PIO: CPU store loop through the window (the latency reference).
    std::vector<std::byte> data(size, std::byte{0x3C});
    const TimePs p0 = rig.sched.now();
    auto t_pio = drv.pio_store(tca.global_host(1, 0x800), data);
    rig.sched.run();
    const TimePs pio = rig.sched.now() - p0;

    table.add_row({units::format_size(size), units::format_time(chain),
                   units::format_time(polled), units::format_time(imm),
                   units::format_time(pio), ""});
    if (size == 4096) {
      chain_4k_us = units::to_us(chain);
      imm_4k_us = units::to_us(imm);
      polled_4k_us = units::to_us(polled);
    }
  }

  print_section(
      "Extension: descriptor-less DMA & polled completion (small remote "
      "writes)");
  table.print();
  std::printf("\nThe immediate path removes the descriptor-table fetch "
              "(%.1f us saved);\npolled completion removes the interrupt "
              "path (%.1f us saved). PIO remains\nbest below ~1 KiB; the "
              "immediate engine wins the mid range.\n",
              chain_4k_us - imm_4k_us, chain_4k_us - polled_4k_us);

  check.expect(imm_4k_us < chain_4k_us - 0.5,
               "immediate DMA removes the table-fetch cost");
  check.expect(polled_4k_us < chain_4k_us - 0.5,
               "polled completion removes the interrupt cost");
  return check.finish();
}
