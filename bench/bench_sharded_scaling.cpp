// Sharded-scheduler scaling sweep: wall-clock of the conservative parallel
// DES core against the seed baseline backend on a ring of N simulated nodes
// (N >= 64 is the gated point), weak-scaled so each node carries the same
// event load.
//
// The workload mirrors the fabric's shape without the fabric's cost, so the
// event engine dominates:
//   * per-node local timers — K self-rescheduling timers per node with
//     ~40-byte captures that walk a private 4 KiB state block (the
//     LinkPort/Dmac serializer shape);
//   * per-node completion timeouts — every local fire disarms and re-arms
//     the node's watchdog, the fault-domain recovery pattern: timeouts
//     almost never fire, they churn (the seed backend pays a tombstone-set
//     insert per disarm, the indexed/sharded queues unlink in place);
//   * ring tokens — one token per node circling the ring, each hop crossing
//     to the neighbour's shard with the cable's flight time (= the
//     conservative lookahead, calib::kConservativeLookaheadPs), exactly the
//     cross-shard edge the epoch barrier is derived from.
//
// Five configurations run per N:
//   baseline   seed priority_queue backend
//   indexed    single indexed queue (calendar tier + 4-ary heap)
//   merge      sharded engine, merge mode (byte-identical global order)
//   epoch T=1  sharded engine, conservative epochs, one worker — the gated
//              configuration: per-shard O(1) calendar queues plus
//              epoch-batched per-node execution (cache locality), no
//              cross-thread overhead to mask the algorithmic win
//   epoch T=2  same, two workers — must match T=1 bit for bit
//
// Determinism gates:
//   * baseline / indexed / merge agree on a global order-sensitive hash;
//   * merge / epoch T=1 / epoch T=2 agree on every per-shard event-order
//     hash (the per-shard projection is the invariant epochs preserve; the
//     workload keeps local-event times off the token-arrival time lattice so
//     the projection is tie-free).
//
// Wall-clock gate: at the largest N (>= 64), baseline / epoch-T=1 >= 2x.
// --json PATH emits the sweep for scripts/bench_perf.sh to merge into
// BENCH_sim_core.json; --smoke shrinks it for scripts/check.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "calib/calibration.h"
#include "fabric/topology.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"

namespace tca::bench {
namespace {

using sim::Scheduler;
using sim::ShardedEngine;
using Clock = std::chrono::steady_clock;
using QueueImpl = Scheduler::QueueImpl;

constexpr TimePs kHopPs = calib::kConservativeLookaheadPs;  // cable flight
constexpr std::size_t kStateWords = 512;                    // 4 KiB per node
constexpr int kTimersPerNode = 8;
constexpr TimePs kTimeoutPs = 5 * 40'000;  // watchdog: re-armed long before it fires

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Token arrivals land on the multiple-of-5 ps lattice; local timers start at
/// residue 1..4 and advance by multiples of 5, so a mailbox-drained event
/// never ties with a locally scheduled one at the same picosecond — merge and
/// epoch modes then execute every shard's events in the same order.
TimePs round_up_to_lattice(TimePs t) { return (t + 4) / 5 * 5; }

struct Rig;

struct Pad32 {
  std::uint64_t a = 0, b = 0, c = 0, d = 0;
};

struct LocalTimer {
  Rig* rig;
  std::uint32_t node;
  TimePs period;       // multiple of 5
  std::uint64_t left;  // fires remaining
};

struct Rig {
  Scheduler* sched = nullptr;
  std::uint32_t nodes = 0;
  std::uint32_t token_hops = 0;
  std::vector<std::uint32_t> next_of;  // token successor per node
  bool track_global = false;  // off for multi-thread epoch runs (shared word)
  std::uint64_t global_hash = 0xcbf29ce484222325ull;
  std::vector<std::uint64_t> shard_hash;   // one slot per node == shard
  std::vector<std::uint64_t> state;        // nodes * kStateWords
  std::vector<LocalTimer> timers;
  std::vector<Scheduler::EventId> timeout;  // per-node armed watchdog

  /// (Re-)arms node's watchdog at absolute time `at`. Same-shard schedule:
  /// the id stays valid and cancellable from the node's own events in every
  /// backend mode. Callers keep `at` off the multiple-of-5 token lattice.
  void arm_timeout(std::uint32_t node, TimePs at) {
    timeout[node] = sched->schedule_on(node, at, [this, node, pad = Pad32{}] {
      (void)pad;
      touch(node, 0x7400ull + node);  // expired: fires only at drain
    });
  }

  void touch(std::uint32_t node, std::uint64_t key) {
    const TimePs now = sched->now();
    std::uint64_t* s = state.data() +
                       static_cast<std::size_t>(node) * kStateWords;
    std::uint64_t acc = key;
    const std::size_t base = static_cast<std::size_t>(key * 7) %
                             (kStateWords - 8);
    for (std::size_t j = 0; j < 8; ++j) {
      acc ^= s[base + j];
      s[base + j] = acc * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(now);
    }
    shard_hash[node] = hash_combine(shard_hash[node],
                                    acc ^ static_cast<std::uint64_t>(now));
    if (track_global) {
      global_hash = hash_combine(global_hash,
                                 acc + (static_cast<std::uint64_t>(node) << 48));
    }
  }
};

void fire_local(LocalTimer* t) {
  Rig* rig = t->rig;
  rig->touch(t->node, t->left);
  // Watchdog churn: disarm and re-arm the node's timeout, the fault-domain
  // recovery pattern. now ≡ 1..4 (mod 5) here, so the re-armed time stays
  // off the token-arrival lattice.
  TCA_ASSERT(rig->sched->cancel(rig->timeout[t->node]));
  rig->arm_timeout(t->node, rig->sched->now() + kTimeoutPs);
  if (--t->left == 0) return;
  // ~40-byte capture: pointer + padding. Inline in EventFn, heap-allocated
  // by the seed backend's std::function — the realistic simulator shape.
  t->rig->sched->schedule_on_after(t->node, t->period,
                                   [t, pad = Pad32{}] {
                                     (void)pad;
                                     fire_local(t);
                                   });
}

void hop_token(Rig* rig, std::uint32_t node, std::uint32_t hops_left,
               std::uint32_t token) {
  rig->touch(node, 0x10000ull + token * 1000ull + hops_left);
  if (hops_left == 0) return;
  const std::uint32_t next = rig->next_of[node];
  // The hop crosses the cable: schedule on the *neighbour's* shard at now +
  // flight time, rounded up onto the arrival lattice. flight >= lookahead,
  // so in epoch mode this always lands at or past the epoch boundary.
  const TimePs arrive = round_up_to_lattice(rig->sched->now() + kHopPs);
  rig->sched->schedule_on(next, arrive, [rig, next, hops_left, token,
                                         pad = Pad32{}] {
    (void)pad;
    hop_token(rig, next, hops_left - 1, token);
  });
}

struct RunResult {
  double wall_s = 0;
  std::uint64_t processed = 0;
  std::uint64_t global_hash = 0;
  std::vector<std::uint64_t> shard_hash;
};

struct Workload {
  std::uint32_t nodes;
  std::uint64_t fires_per_timer;
  std::uint32_t token_hops;
  /// Empty (default): plain ring successor, the original sweep byte for
  /// byte. A torus spec routes tokens along the boustrophedon ring order
  /// instead — every hop is still one cable (unit fabric hop), but the
  /// cross-shard edges now follow the snaked dimension-order walk.
  fabric::TopologySpec spec;
};

/// One full simulation of the ring/torus workload on the given scheduler.
RunResult run_ring(Scheduler& sched, const Workload& w, bool track_global) {
  Rig rig;
  rig.sched = &sched;
  rig.nodes = w.nodes;
  rig.token_hops = w.token_hops;
  rig.next_of.resize(w.nodes);
  if (w.spec.empty()) {
    for (std::uint32_t i = 0; i < w.nodes; ++i) {
      rig.next_of[i] = i + 1 == w.nodes ? 0 : i + 1;
    }
  } else {
    const std::vector<std::uint32_t> order = w.spec.ring_order();
    for (std::uint32_t p = 0; p < w.nodes; ++p) {
      rig.next_of[order[p]] = order[(p + 1) % w.nodes];
    }
  }
  rig.track_global = track_global;
  rig.shard_hash.assign(w.nodes, 0xcbf29ce484222325ull);
  rig.state.assign(static_cast<std::size_t>(w.nodes) * kStateWords, 0);
  rig.timeout.assign(w.nodes, Scheduler::kInvalidEvent);
  rig.timers.reserve(static_cast<std::size_t>(w.nodes) * kTimersPerNode);
  for (std::uint32_t i = 0; i < w.nodes; ++i) {
    for (int k = 0; k < kTimersPerNode; ++k) {
      rig.timers.push_back(LocalTimer{
          &rig, i,
          5 * (90 + static_cast<TimePs>((i * 13 + k * 7) % 64)),
          w.fires_per_timer});
    }
  }

  const auto t0 = Clock::now();
  for (std::uint32_t i = 0; i < w.nodes; ++i) {
    rig.arm_timeout(i, kTimeoutPs + 1 + static_cast<TimePs>(i % 4));
  }
  for (std::size_t idx = 0; idx < rig.timers.size(); ++idx) {
    LocalTimer* t = &rig.timers[idx];
    const TimePs start = 1 + static_cast<TimePs>((t->node + idx) % 4);
    sched.schedule_on(t->node, start, [t, pad = Pad32{}] {
      (void)pad;
      fire_local(t);
    });
  }
  for (std::uint32_t i = 0; i < w.nodes; ++i) {
    sched.schedule_on(i, round_up_to_lattice(kHopPs),
                      [&rig, i, hops = w.token_hops] {
                        hop_token(&rig, i, hops, i);
                      });
  }
  sched.run();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.processed = sched.events_processed();
  r.global_hash = rig.global_hash;
  r.shard_hash = std::move(rig.shard_hash);
  TCA_ASSERT(sched.empty());
  return r;
}

RunResult run_backend(QueueImpl impl, const Workload& w) {
  Scheduler sched(impl);
  return run_ring(sched, w, /*track_global=*/true);
}

RunResult run_sharded(const Workload& w, unsigned threads) {
  ShardedEngine::Config cfg;
  cfg.shards = w.nodes;
  cfg.lookahead_ps = calib::kConservativeLookaheadPs;
  cfg.threads = threads;
  Scheduler sched(cfg);
  // The global hash is a single shared word — only merge mode (threads == 0,
  // serial global order) may track it.
  return run_ring(sched, w, /*track_global=*/threads == 0);
}

/// Best (minimum) wall clock over `reps` runs; asserts every rerun reproduces
/// the first run's hashes, so the timing filter doubles as a determinism
/// check.
template <typename F>
RunResult best_wall(int reps, F&& run) {
  RunResult best = run();
  for (int r = 1; r < reps; ++r) {
    RunResult next = run();
    TCA_ASSERT(next.processed == best.processed &&
               next.global_hash == best.global_hash &&
               next.shard_hash == best.shard_hash);
    best.wall_s = std::min(best.wall_s, next.wall_s);
  }
  return best;
}

struct SweepRow {
  std::string label;  // JSON key: ring_<n> or torus_<XxY[xZ]>
  std::uint32_t nodes = 0;
  double baseline_s = 0, indexed_s = 0, merge_s = 0, epoch1_s = 0,
         epoch2_s = 0;
  std::uint64_t events = 0;
  bool order_equivalent = false;   // baseline == indexed == merge (global)
  bool thread_invariant = false;   // merge == epoch1 == epoch2 (per shard)
  [[nodiscard]] double speedup() const {
    return epoch1_s > 0 ? baseline_s / epoch1_s : 0;
  }
  [[nodiscard]] double merge_speedup() const {
    return merge_s > 0 ? baseline_s / merge_s : 0;
  }
};

std::string row_label(const Workload& w) {
  if (w.spec.empty()) return "ring_" + std::to_string(w.nodes);
  std::string label = w.spec.to_string();  // torus:8x8 -> torus_8x8
  for (char& c : label) {
    if (c == ':') c = '_';
  }
  return label;
}

SweepRow sweep_point(const Workload& w, int reps) {
  SweepRow row;
  row.label = row_label(w);
  row.nodes = w.nodes;
  const RunResult base =
      best_wall(reps, [&] { return run_backend(QueueImpl::kBaseline, w); });
  const RunResult idx =
      best_wall(1, [&] { return run_backend(QueueImpl::kIndexed, w); });
  const RunResult merge = best_wall(1, [&] { return run_sharded(w, 0); });
  const RunResult epoch1 =
      best_wall(reps, [&] { return run_sharded(w, 1); });
  const RunResult epoch2 = best_wall(1, [&] { return run_sharded(w, 2); });

  row.baseline_s = base.wall_s;
  row.indexed_s = idx.wall_s;
  row.merge_s = merge.wall_s;
  row.epoch1_s = epoch1.wall_s;
  row.epoch2_s = epoch2.wall_s;
  row.events = base.processed;
  row.order_equivalent = base.processed == idx.processed &&
                         base.processed == merge.processed &&
                         base.global_hash == idx.global_hash &&
                         base.global_hash == merge.global_hash &&
                         base.shard_hash == idx.shard_hash &&
                         base.shard_hash == merge.shard_hash;
  row.thread_invariant = merge.processed == epoch1.processed &&
                         merge.processed == epoch2.processed &&
                         merge.shard_hash == epoch1.shard_hash &&
                         merge.shard_hash == epoch2.shard_hash;
  return row;
}

int run(bool smoke, const std::string& json_path) {
  const std::vector<std::uint32_t> nodes =
      smoke ? std::vector<std::uint32_t>{16, 64}
            : std::vector<std::uint32_t>{16, 64, 128, 256};
  const std::uint64_t fires = smoke ? 150 : 2000;
  const std::uint32_t hops = smoke ? 10 : 60;
  const int reps = smoke ? 1 : 2;
  const double min_speedup = smoke ? 1.1 : 2.0;

  print_section("Sharded DES core: ring sweep wall clock (weak scaling)");

  std::vector<SweepRow> rows;
  for (std::uint32_t n : nodes) {
    rows.push_back(sweep_point(Workload{n, fires, hops}, reps));
  }
  const SweepRow gate = rows.back();  // largest ring: the wall-clock gate
                                      // (copied — rows grows below)

  // Torus sweep: same engine, tokens snaking the boustrophedon order. The
  // 8x8 and 4x4x4 tori are the >= 64-node acceptance shapes; they share the
  // ring rows' determinism gates (identical hashes across thread counts).
  const std::vector<fabric::TopologySpec> tori =
      smoke ? std::vector<fabric::TopologySpec>{fabric::TopologySpec::torus(
                  {8, 8})}
            : std::vector<fabric::TopologySpec>{
                  fabric::TopologySpec::torus({8, 8}),
                  fabric::TopologySpec::torus({4, 4, 4})};
  for (const fabric::TopologySpec& spec : tori) {
    rows.push_back(
        sweep_point(Workload{spec.node_count(), fires, hops, spec}, reps));
  }

  TablePrinter table({"topology", "events", "baseline (s)", "indexed (s)",
                      "merge (s)", "epoch T=1 (s)", "epoch T=2 (s)",
                      "speedup", "merge speedup"});
  for (const SweepRow& r : rows) {
    table.add_row({r.label, std::to_string(r.events),
                   TablePrinter::cell(r.baseline_s, 3),
                   TablePrinter::cell(r.indexed_s, 3),
                   TablePrinter::cell(r.merge_s, 3),
                   TablePrinter::cell(r.epoch1_s, 3),
                   TablePrinter::cell(r.epoch2_s, 3),
                   TablePrinter::cell(r.speedup()),
                   TablePrinter::cell(r.merge_speedup())});
  }
  table.print();

  ShapeCheck check;
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "sharded epoch backend %.2fx >= %.1fx over seed baseline at "
                "%u nodes (wall clock)",
                gate.speedup(), min_speedup, gate.nodes);
  check.expect(gate.speedup() >= min_speedup, buf);
  check.expect(gate.nodes >= 64, "gated sweep point covers >= 64 nodes");
  for (const SweepRow& r : rows) {
    std::snprintf(buf, sizeof buf,
                  "%s: baseline/indexed/merge global event order identical",
                  r.label.c_str());
    check.expect(r.order_equivalent, buf);
    std::snprintf(buf, sizeof buf,
                  "%s: per-shard event order invariant across merge and "
                  "epoch T=1/T=2",
                  r.label.c_str());
    check.expect(r.thread_invariant, buf);
  }
  check.expect(std::any_of(rows.begin(), rows.end(),
                           [](const SweepRow& r) {
                             return r.label.rfind("torus", 0) == 0 &&
                                    r.nodes >= 64 && r.thread_invariant;
                           }),
               ">= 64-node torus completes with thread-invariant hashes");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    check.expect(f != nullptr, "write " + json_path);
    if (f == nullptr) return check.finish(), 1;
    std::fprintf(f, "{\n  \"bench\": \"sharded_scaling\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"sharded_scaling\": {\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(f,
                   "    \"%s\": {\"events\": %llu, "
                   "\"baseline_wall_s\": %.4f, \"indexed_wall_s\": %.4f, "
                   "\"merge_wall_s\": %.4f, \"epoch1_wall_s\": %.4f, "
                   "\"epoch2_wall_s\": %.4f, \"speedup\": %.3f, "
                   "\"merge_speedup\": %.3f}%s\n",
                   r.label.c_str(), static_cast<unsigned long long>(r.events),
                   r.baseline_s, r.indexed_s, r.merge_s, r.epoch1_s,
                   r.epoch2_s, r.speedup(), r.merge_speedup(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sharded_scaling_speedup\": %.3f,\n", gate.speedup());
    std::fprintf(f, "  \"sharded_scaling_nodes\": %u,\n", gate.nodes);
    const bool all_ok =
        std::all_of(rows.begin(), rows.end(), [](const SweepRow& r) {
          return r.order_equivalent && r.thread_invariant;
        });
    std::fprintf(f, "  \"sharded_scaling_deterministic\": %s\n",
                 all_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  return check.finish();
}

}  // namespace
}  // namespace tca::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return tca::bench::run(smoke, json_path);
}
