// Shared helpers for the reproduction benches.
//
// Every bench binary prints the paper's series as an aligned table, then a
// list of shape checks (who wins, saturation points, ratios) and exits
// non-zero if a check fails — so `for b in build/bench/*; do $b; done`
// doubles as a regression gate for the reproduction.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "driver/peach2_driver.h"
#include "fabric/sub_cluster.h"
#include "obs/metrics.h"
#include "peach2/descriptor.h"
#include "sim/scheduler.h"

namespace tca::bench {

/// Accumulates pass/fail shape checks and renders them.
class ShapeCheck {
 public:
  void expect(bool ok, const std::string& what) {
    results_.push_back({ok, what});
    if (!ok) failed_ = true;
  }
  void expect_near(double value, double target, double tol,
                   const std::string& what) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s (measured %.3f, target %.3f +/- %.3f)",
                  what.c_str(), value, target, tol);
    expect(value >= target - tol && value <= target + tol, buf);
  }
  void expect_ratio(double num, double den, double lo, double hi,
                    const std::string& what) {
    const double r = den != 0 ? num / den : 0;
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s (ratio %.3f, expected [%.2f, %.2f])",
                  what.c_str(), r, lo, hi);
    expect(r >= lo && r <= hi, buf);
  }

  /// Prints the checks; returns the process exit code.
  int finish() const {
    std::printf("\nShape checks:\n");
    for (const auto& [ok, what] : results_) {
      std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    }
    std::printf("%s\n", failed_ ? "RESULT: FAIL" : "RESULT: OK");
    return failed_ ? 1 : 0;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  bool failed_ = false;
};

/// Standard 2-node rig used by the DMA benches.
///
/// Metrics sidecar: when the TCA_METRICS_OUT environment variable names a
/// file, the rig enables latency sampling and, on destruction, writes the
/// fabric's full metrics snapshot there as JSON — so any figure bench can
/// emit per-link/per-channel counters alongside its table without code
/// changes (`TCA_METRICS_OUT=fig9.metrics.json bench_fig9_dma_chain`).
struct DmaRig {
  explicit DmaRig(std::uint32_t nodes = 2)
      : cluster(sched, fabric::SubClusterConfig{
                           .spec = fabric::TopologySpec::ring(nodes),
                           .node_config = {.gpu_count = 2,
                                           .host_backing_bytes = 64ull << 20,
                                           .gpu_backing_bytes = 8ull << 20}}) {
    if (const char* path = std::getenv("TCA_METRICS_OUT")) {
      metrics_path_ = path;
      obs::set_sampling_enabled(true);
    }
    // Stage recognizable data in node 0's internal RAM and host memory,
    // and pin a window on every GPU we might address.
    Rng rng(42);
    auto& ram = cluster.chip(0).internal_ram();
    std::vector<std::byte> fill(ram.size());
    rng.fill(fill);
    ram.write(0, fill);
    std::vector<std::byte> hostfill(4 << 20);
    rng.fill(hostfill);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      cluster.node(n).host_dram().write(0, hostfill);
      for (int g = 0; g < 2; ++g) {
        auto& gpu = cluster.node(n).gpu(g);
        auto ptr = gpu.mem_alloc(4 << 20);
        TCA_ASSERT(ptr.is_ok());
        TCA_ASSERT(cluster.driver(n).p2p().pin(g, ptr.value(), 4 << 20)
                       .is_ok());
        gpu.poke(ptr.value(), hostfill);
      }
    }
  }

  /// Runs one chain and returns the TSC-measured elapsed time (the paper's
  /// measurement method).
  TimePs run(std::uint32_t driving_node,
             std::vector<peach2::DmaDescriptor> chain) {
    auto t = cluster.driver(driving_node).run_chain(std::move(chain));
    sched.run();
    return t.result();
  }

  /// Builds a `count`-deep chain of identical-size transfers with the
  /// source/destination advancing by `size` each descriptor (modulo the
  /// staging window), exactly like the evaluation's burst experiments.
  std::vector<peach2::DmaDescriptor> make_chain(
      std::uint32_t count, std::uint32_t size, peach2::DmaDirection dir,
      std::uint64_t src_base, std::uint64_t dst_base,
      std::uint64_t window = 1 << 20) {
    std::vector<peach2::DmaDescriptor> chain;
    chain.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t off = (static_cast<std::uint64_t>(i) * size) %
                                (window - size + 1);
      chain.push_back({.src = src_base + off,
                       .dst = dst_base + off,
                       .length = size,
                       .direction = dir});
    }
    return chain;
  }

  double gbps(std::uint64_t bytes, TimePs elapsed) const {
    return units::gbytes_per_second(bytes, elapsed);
  }

  /// Snapshot of every fabric counter (on demand; also written by ~DmaRig
  /// when TCA_METRICS_OUT is set).
  void export_metrics(obs::MetricRegistry& reg) const {
    cluster.export_metrics(reg);
  }

  ~DmaRig() {
    if (metrics_path_.empty()) return;
    obs::MetricRegistry reg;
    cluster.export_metrics(reg);
    const Status st = reg.write_json(metrics_path_);
    if (!st.is_ok()) {
      std::fprintf(stderr, "metrics sidecar: %s\n", st.to_string().c_str());
    } else {
      std::printf("metrics: %zu -> %s\n", reg.size(), metrics_path_.c_str());
    }
  }

  sim::Scheduler sched;
  fabric::SubCluster cluster;
  std::string metrics_path_;
};

inline std::string fmt_gbps(double v) { return TablePrinter::cell(v, 3); }

}  // namespace tca::bench
