// Headline comparison (Sections I and V): TCA versus the conventional
// InfiniBand/MPI stack for GPU-to-GPU and host-to-host communication.
//
// Reproduced shape:
//   * Short messages: TCA PIO is sub-microsecond; the conventional 3-copy
//     GPU path pays two cudaMemcpy overheads plus the MPI stack — an order
//     of magnitude slower ("the latency caused by multiple memory copies
//     severely degrades the performance, especially ... short message").
//   * Large messages: dual-rail IB delivers more bandwidth than one PCIe
//     Gen2 x8 TCA link — which is why HA-PACS/TCA uses the hierarchy "TCA
//     interconnect for local communication with low latency and InfiniBand
//     for global communication with high bandwidth" (Section II-B).
#include <memory>

#include "api/tca.h"
#include "baseline/conventional.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "bench/bench_util.h"

using namespace tca;

namespace {

struct BaselineRig {
  BaselineRig() {
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_unique<node::ComputeNode>(
          sched, i,
          node::NodeConfig{.gpu_count = 2,
                           .host_backing_bytes = 64 << 20,
                           .gpu_backing_bytes = 8 << 20}));
    }
    std::vector<node::ComputeNode*> ptrs{nodes[0].get(), nodes[1].get()};
    fabric = std::make_unique<baseline::IbFabric>(sched, ptrs);
    mpi = std::make_unique<baseline::MpiLite>(sched, *fabric);
    conv = std::make_unique<baseline::ConventionalGpuComm>(*mpi, ptrs);
  }
  sim::Scheduler sched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  std::unique_ptr<baseline::IbFabric> fabric;
  std::unique_ptr<baseline::MpiLite> mpi;
  std::unique_ptr<baseline::ConventionalGpuComm> conv;
};

}  // namespace

int main() {
  bench::ShapeCheck check;
  const std::vector<std::uint64_t> sizes = {4,        64,        1024,
                                            4096,     64 << 10,  256 << 10,
                                            1 << 20};

  TablePrinter lat({"Size", "TCA GPU-GPU", "MPI GPU 3-copy", "MPI host",
                    "TCA speedup", "(one-way)"});
  TablePrinter bw({"Size", "TCA GPU-GPU", "TCA host-host", "IB dual-rail",
                   "3-copy pipelined", "(Gbytes/s)"});

  double tca_small_lat_us = 0, conv_small_lat_us = 0;
  double tca_big_bw = 0, ib_big_bw = 0;

  for (std::uint64_t size : sizes) {
    // --- TCA: one GPU-to-GPU put ------------------------------------------
    sim::Scheduler tca_sched;
    api::Runtime rt(tca_sched,
                    api::TcaConfig{.spec = fabric::TopologySpec::ring(2),
                                   .node_config = {.gpu_count = 2,
                                                   .host_backing_bytes =
                                                       64ull << 20,
                                                   .gpu_backing_bytes =
                                                       8ull << 20}});
    auto gsrc = rt.alloc_gpu(0, 0, 2 << 20).value();
    auto gdst = rt.alloc_gpu(1, 0, 2 << 20).value();
    auto hsrc = rt.alloc_host(0, 2 << 20).value();
    auto hdst = rt.alloc_host(1, 2 << 20).value();

    TimePs t0 = tca_sched.now();
    auto c1 = rt.memcpy_peer(gdst, 0, gsrc, 0, size);
    tca_sched.run();
    const TimePs tca_gpu = tca_sched.now() - t0;

    t0 = tca_sched.now();
    auto c2 = rt.memcpy_peer(hdst, 0, hsrc, 0, size);
    tca_sched.run();
    const TimePs tca_host = tca_sched.now() - t0;

    // --- Conventional: 3-copy GPU path and host MPI --------------------------
    BaselineRig rig;
    TimePs b0 = rig.sched.now();
    {
      auto tx = rig.conv->send_gpu(0, 0, 0, size, 1, 1);
      auto rx = rig.conv->recv_gpu(1, 0, 0, size, 0, 1);
      rig.sched.run();
    }
    const TimePs conv_gpu = rig.sched.now() - b0;

    b0 = rig.sched.now();
    {
      std::vector<std::byte> buf(size, std::byte{1});
      auto tx = rig.mpi->send(0, 1, 2, buf);
      auto rx = rig.mpi->recv(1, 0, 2);
      rig.sched.run();
    }
    const TimePs mpi_host = rig.sched.now() - b0;

    b0 = rig.sched.now();
    {
      auto tx = rig.conv->send_gpu_pipelined(0, 0, 0, size, 1, 3);
      auto rx = rig.conv->recv_gpu_pipelined(1, 0, 0, size, 0, 3);
      rig.sched.run();
    }
    const TimePs conv_pipe = rig.sched.now() - b0;

    // Raw IB dual-rail wire bandwidth reference.
    b0 = rig.sched.now();
    {
      std::vector<std::byte> buf(size, std::byte{2});
      auto w = rig.fabric->rdma_write(0, 1, buf, 0);
      rig.sched.run();
    }
    const TimePs ib_raw = rig.sched.now() - b0;

    lat.add_row({units::format_size(size),
                 units::format_time(tca_gpu),
                 units::format_time(conv_gpu),
                 units::format_time(mpi_host),
                 TablePrinter::cell(static_cast<double>(conv_gpu) /
                                        static_cast<double>(tca_gpu),
                                    1) +
                     "x",
                 ""});
    bw.add_row({units::format_size(size),
                bench::fmt_gbps(units::gbytes_per_second(size, tca_gpu)),
                bench::fmt_gbps(units::gbytes_per_second(size, tca_host)),
                bench::fmt_gbps(units::gbytes_per_second(size, ib_raw)),
                bench::fmt_gbps(units::gbytes_per_second(size, conv_pipe)),
                ""});

    if (size == 64) {
      tca_small_lat_us = units::to_us(tca_gpu);
      conv_small_lat_us = units::to_us(conv_gpu);
    }
    if (size == (1 << 20)) {
      tca_big_bw = units::gbytes_per_second(size, tca_host);
      ib_big_bw = units::gbytes_per_second(size, ib_raw);
    }
  }

  print_section("TCA vs conventional stack: one-way latency");
  lat.print();
  print_section("TCA vs conventional stack: bandwidth");
  bw.print();
  std::printf(
      "\nHierarchy rationale (Section II-B): TCA wins short-message latency\n"
      "by avoiding the copies and the protocol stack; dual-rail IB wins raw\n"
      "bulk bandwidth — hence \"TCA ... for local communication with low\n"
      "latency and InfiniBand for global communication with high "
      "bandwidth\".\n");

  check.expect(conv_small_lat_us / tca_small_lat_us > 3.0,
               "64 B GPU-GPU: TCA is >3x faster than the 3-copy path");
  check.expect(tca_small_lat_us < 10.0 && conv_small_lat_us > 14.0,
               "small-message conventional path pays 2x cudaMemcpy + MPI");
  check.expect(ib_big_bw > tca_big_bw,
               "1 MiB: dual-rail IB outruns one TCA link (hierarchy story)");
  return check.finish();
}
