// Table II reproduction: the preliminary-evaluation test environment,
// cross-checked against the simulator's configuration (the constants the
// model actually runs with: PEACH2 clock, logic version register, PCIe
// generation/widths, GPU read path, window size).
#include "bench/bench_util.h"
#include "fabric/hapacs_specs.h"
#include "peach2/registers.h"

using namespace tca;
using fabric::specs::TestEnvironment;

int main() {
  bench::ShapeCheck check;
  const TestEnvironment spec;

  TablePrinter table({"Item", "Paper (Table II)", "Simulator model"});
  table.add_row({"CPU", spec.cpu, "CpuAgent + 2x RootComplex, QPI-joined"});
  table.add_row({"Memory", spec.memory,
                 "host DRAM model, commit 160 ns / read 350 ns"});
  table.add_row({"Motherboard", std::string(spec.motherboard_a) + " / " +
                                    spec.motherboard_b,
                 "BIOS able to map the 512 GB BAR (footnote 2)"});
  table.add_row({"GPU", spec.gpu,
                 "BAR1 pinning; read path capped at 830 MB/s"});
  table.add_row({"GPU memory", spec.gpu_memory, "functional GDDR backing"});
  table.add_row({"PEACH2 board", spec.board,
                 "4 ports Gen2 x8; shallow egress FIFOs"});
  table.add_row({"FPGA", spec.fpga,
                 "2 MiB internal RAM + board DRAM models"});
  table.add_row({"PEACH2 logic", "version 20121112", "kLogicVersion register"});
  table.add_row({"OS / kernel", spec.kernel, "driver timing model"});
  table.add_row({"GPU driver / CUDA",
                 std::string(spec.gpu_driver) + ", " + spec.cuda,
                 "P2P token + pin flow (Section IV-A2 steps 1-4)"});

  print_section("Table II: test environment for the preliminary evaluation");
  table.print();

  // The simulator must actually embody the environment it claims.
  check.expect(peach2::regs::kLogicVersionValue == spec.peach2_logic_version,
               "logic-version register equals Table II's 20121112");
  check.expect_near(1e3 / (static_cast<double>(calib::kPeach2ClockHz) / 1e6),
                    4.0, 0.01,
                    "250 MHz PEACH2 clock -> 4 ns cycle (Section III-G)");
  const pcie::LinkConfig gen2x8{.gen = 2, .lanes = 8};
  check.expect_near(gen2x8.raw_bytes_per_sec() / 1e9, 4.0, 0.01,
                    "each port: PCIe Gen2 x8 = 4 GB/s raw");
  check.expect(calib::kMaxPayloadBytes == 256,
               "MaxPayloadSize 256 B (Section IV-A)");
  check.expect(calib::kTcaWindowBytes == 512ull << 30,
               "PEACH2 reserves a 512 GB window (Section III-E)");
  check.expect(calib::kMaxDescriptors == 255,
               "chaining DMA: up to 255 descriptors");

  // The register file must report the same identity over MMIO.
  bench::DmaRig rig;
  auto id = rig.cluster.driver(0).read_register(peach2::regs::kChipId);
  auto ver = rig.cluster.driver(0).read_register(peach2::regs::kLogicVersion);
  rig.sched.run();
  check.expect(id.result() == peach2::regs::kChipIdValue,
               "chip-id register readable over MMIO");
  check.expect(ver.result() == spec.peach2_logic_version,
               "logic version readable over MMIO");
  return check.finish();
}
