// Figure 7 reproduction: data size vs bandwidth between PEACH2 and the
// CPU/GPU within a node, 255 chained DMA requests.
//
// Paper results reproduced in shape:
//   * CPU write peaks at 3.3 GB/s at 4 KiB — 93% of the 3.66 GB/s
//     theoretical peak (4 GB/s x 256/280).
//   * GPU write is approximately the same as CPU write.
//   * DMA read trails DMA write below 4 KiB and roughly converges at 4 KiB.
//   * GPU read is capped near 830 MB/s by the BAR1 address-conversion path.
#include "bench/bench_util.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

int main() {
  bench::ShapeCheck check;
  DmaRig rig;
  driver::Peach2Driver& drv = rig.cluster.driver(0);

  const std::vector<std::uint32_t> sizes = {16,  32,  64,   128,  256,
                                            512, 1024, 2048, 4096};
  constexpr std::uint32_t kBurst = 255;

  TablePrinter table({"Size", "CPU write", "CPU read", "GPU write",
                      "GPU read", "(Gbytes/s)"});
  double cpu_w_4k = 0, cpu_r_4k = 0, gpu_w_4k = 0, gpu_r_4k = 0;
  double cpu_w_512 = 0, cpu_r_512 = 0;

  for (std::uint32_t size : sizes) {
    const std::uint64_t total = static_cast<std::uint64_t>(kBurst) * size;

    // DMA write: internal RAM -> target ("a DMA write indicates a transfer
    // from PEACH2 to CPU/GPU").
    const double cpu_w = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         drv.host_buffer_global(0))));
    const double gpu_w = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kWrite,
                                         drv.internal_global(0),
                                         drv.gpu_global(0, 0))));
    // DMA read: target -> internal RAM.
    const double cpu_r = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kRead,
                                         drv.host_buffer_global(0),
                                         drv.internal_global(0))));
    const double gpu_r = rig.gbps(
        total, rig.run(0, rig.make_chain(kBurst, size, DmaDirection::kRead,
                                         drv.gpu_global(0, 0),
                                         drv.internal_global(0))));

    table.add_row({units::format_size(size), bench::fmt_gbps(cpu_w),
                   bench::fmt_gbps(cpu_r), bench::fmt_gbps(gpu_w),
                   bench::fmt_gbps(gpu_r), ""});
    if (size == 4096) {
      cpu_w_4k = cpu_w;
      cpu_r_4k = cpu_r;
      gpu_w_4k = gpu_w;
      gpu_r_4k = gpu_r;
    }
    if (size == 512) {
      cpu_w_512 = cpu_w;
      cpu_r_512 = cpu_r;
    }
  }

  print_section(
      "Figure 7: size vs bandwidth, PEACH2 <-> CPU/GPU in-node (DMA x255)");
  table.print();
  std::printf("\nTheoretical peak: 4 GB/s x 256/280 = 3.657 Gbytes/s "
              "(paper: 3.66)\n");

  check.expect_near(cpu_w_4k, 3.3, 0.1,
                    "CPU write at 4 KiB reaches the paper's 3.3 GB/s");
  check.expect_near(cpu_w_4k / 3.657, 0.93, 0.03,
                    "4 KiB write efficiency is ~93% of theoretical peak");
  check.expect_ratio(gpu_w_4k, cpu_w_4k, 0.95, 1.05,
                     "GPU write ~= CPU write (GPUDirect at line rate)");
  check.expect(cpu_r_512 < cpu_w_512,
               "DMA read trails DMA write at sub-4KiB sizes");
  check.expect_ratio(cpu_r_4k, cpu_w_4k, 0.85, 1.02,
                     "CPU read approximately equals write at 4 KiB");
  check.expect_near(gpu_r_4k, 0.83, 0.07,
                    "GPU read capped near 830 MB/s (address conversion)");
  return check.finish();
}
